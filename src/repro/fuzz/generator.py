"""Seeded, grammar-based DML program generation.

The generator targets the real grammar (``docs/language.md``) with
shape-aware typing: it tracks the shape of every live variable so that
every emitted program compiles and runs under every configuration of the
lattice.  Programs are built from a tiny statement IR (:class:`Raw` lines
and :class:`Block` nodes) that the minimizer can manipulate structurally.

Design constraints baked into the grammar:

* ``rand``/``sample`` always carry an explicit literal seed.  Unseeded
  data generation draws system seeds in program order, and multi-level
  reuse legitimately skips whole blocks — which would shift the draw
  sequence and produce *expected* divergence.  Determinism across configs
  is the invariant under test, so non-determinism is excluded by
  construction.
* Numerics stay bounded: division and logarithm are guarded
  (``/(abs(x)+1)``, ``log(abs(x)+1.5)``), exponentiation uses small
  integer powers, and loop accumulators contract (``acc*0.5 + M``), so
  tolerance-based comparison of partial-reuse configs stays meaningful.
* ``eigen``/``svd`` vector outputs never flow downstream — eigenvectors
  of near-degenerate spectra amplify 1-ulp input differences — but the
  (stable) value vectors do, and the vector outputs still exercise the
  multi-return reuse machinery.
* Branches assign the same variables with the same shapes on all paths;
  loop bodies only redefine variables shape-preservingly; parfor bodies
  update disjoint column slices.  The symbol environment is therefore
  identical no matter which path executes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

SCALAR = "scalar"

#: dimension pool generated programs draw from (kept small so matrices
#: stay cheap and shape coincidences — e.g. square matrices — are common)
DIM_POOL = (1, 2, 3, 4, 5, 6, 8)


@dataclass
class Raw:
    """One statement line (no trailing newline)."""

    text: str


@dataclass
class Block:
    """A control-flow construct: ``header { body } [tail { tail_body }]``."""

    header: str
    body: list = field(default_factory=list)
    tail: str | None = None  # e.g. "else"
    tail_body: list = field(default_factory=list)


def render(nodes: list, indent: int = 0) -> str:
    """Render an IR node list to DML source."""
    pad = "  " * indent
    lines: list[str] = []
    for node in nodes:
        if isinstance(node, Raw):
            lines.append(pad + node.text)
        else:
            lines.append(pad + node.header + " {")
            lines.append(render(node.body, indent + 1))
            if node.tail is not None:
                lines.append(pad + "} " + node.tail + " {")
                lines.append(render(node.tail_body, indent + 1))
            lines.append(pad + "}")
    return "\n".join(line for line in lines if line != "")


@dataclass
class GeneratedProgram:
    """A generated program: statement IR plus its comparable outputs."""

    nodes: list
    outputs: list[str]
    seed: int

    @property
    def source(self) -> str:
        return render(self.nodes) + "\n"


class ProgramGenerator:
    """Generates one shape-correct DML program per :meth:`generate` call."""

    def __init__(self, seed: int, size: int = 10):
        self.rng = random.Random(seed)
        self.seed = seed
        self.size = size

    # ------------------------------------------------------------------
    # naming / environment helpers
    # ------------------------------------------------------------------

    def _reset(self) -> None:
        self.env: dict[str, object] = {}  # name -> (rows, cols) | SCALAR
        self.funcs: list[tuple[str, list, list]] = []  # (name, params, outs)
        self._counter = 0
        self._seed_counter = 0
        self.dims = sorted(self.rng.sample(DIM_POOL, 3))

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _next_seed(self) -> int:
        """An explicit literal seed for rand/sample (never a system seed)."""
        self._seed_counter += 1
        return (self.seed * 7919 + self._seed_counter * 104729) % 1_000_000

    def _dim(self) -> int:
        return self.rng.choice(self.dims)

    def _matrices(self, env: dict) -> list[str]:
        return [n for n, s in env.items() if s != SCALAR]

    def _scalars(self, env: dict) -> list[str]:
        return [n for n, s in env.items() if s == SCALAR]

    def _matrix_of(self, env: dict, shape) -> str | None:
        names = [n for n, s in env.items() if s == shape]
        return self.rng.choice(names) if names else None

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _rand_expr(self, rows: int, cols: int) -> str:
        lo = round(self.rng.uniform(-1.5, 0.0), 2)
        hi = round(self.rng.uniform(0.5, 2.0), 2)
        return (f"rand(rows={rows}, cols={cols}, min={lo}, max={hi}, "
                f"seed={self._next_seed()})")

    def matrix_expr(self, env: dict, shape: tuple, depth: int = 2) -> str:
        """An expression of the given (rows, cols) shape."""
        rows, cols = shape
        existing = self._matrix_of(env, shape)
        if depth <= 0 or (existing and self.rng.random() < 0.35):
            if existing and self.rng.random() < 0.75:
                return existing
            return self._rand_expr(rows, cols)
        pick = self.rng.random()
        if pick < 0.30:  # elementwise binary
            op = self.rng.choice(["+", "-", "*", "min", "max", "/"])
            a = self.matrix_expr(env, shape, depth - 1)
            b = self.matrix_expr(env, shape, depth - 1)
            if op in ("min", "max"):
                return f"{op}({a}, {b})"
            if op == "/":
                return f"({a} / (abs({b}) + 1.0))"
            return f"({a} {op} {b})"
        if pick < 0.45:  # matrix-scalar
            op = self.rng.choice(["+", "-", "*"])
            a = self.matrix_expr(env, shape, depth - 1)
            s = self.scalar_expr(env, depth - 1)
            return f"({a} {op} {s})"
        if pick < 0.60:  # unary
            fn = self.rng.choice(["abs", "round", "floor", "ceiling", "sign",
                                  "sigmoid", "sqrt_abs", "log_abs", "exp"])
            a = self.matrix_expr(env, shape, depth - 1)
            if fn == "sqrt_abs":
                return f"sqrt(abs({a}))"
            if fn == "log_abs":
                return f"log(abs({a}) + 1.5)"
            if fn == "exp":
                return f"exp(min({a}, 2.0))"
            return f"{fn}({a})"
        if pick < 0.72:  # matrix multiply through an inner dimension
            k = self._dim()
            a = self.matrix_expr(env, (rows, k), depth - 1)
            b = self.matrix_expr(env, (k, cols), depth - 1)
            return f"({a} %*% {b})"
        if pick < 0.80:  # transpose
            return f"t({self.matrix_expr(env, (cols, rows), depth - 1)})"
        if pick < 0.90 and cols >= 2:  # cbind split
            split = self.rng.randrange(1, cols)
            a = self.matrix_expr(env, (rows, split), depth - 1)
            b = self.matrix_expr(env, (rows, cols - split), depth - 1)
            return f"cbind({a}, {b})"
        if rows >= 2:  # rbind split
            split = self.rng.randrange(1, rows)
            a = self.matrix_expr(env, (split, cols), depth - 1)
            b = self.matrix_expr(env, (rows - split, cols), depth - 1)
            return f"rbind({a}, {b})"
        return self._rand_expr(rows, cols)

    def scalar_expr(self, env: dict, depth: int = 2) -> str:
        scalars = self._scalars(env)
        if depth <= 0 or self.rng.random() < 0.4:
            if scalars and self.rng.random() < 0.6:
                return self.rng.choice(scalars)
            return str(round(self.rng.uniform(-2.0, 2.5), 2))
        pick = self.rng.random()
        matrices = self._matrices(env)
        if pick < 0.45 and matrices:  # full aggregate
            fn = self.rng.choice(["sum", "mean", "min", "max"])
            return f"{fn}({self.rng.choice(matrices)})"
        if pick < 0.6 and matrices:  # scalar cell read
            name = self.rng.choice(matrices)
            r, c = env[name]
            i = self.rng.randrange(1, r + 1)
            j = self.rng.randrange(1, c + 1)
            return f"as.scalar({name}[{i}, {j}])"
        op = self.rng.choice(["+", "-", "*"])
        a = self.scalar_expr(env, depth - 1)
        b = self.scalar_expr(env, depth - 1)
        return f"({a} {op} {b})"

    def bool_expr(self, env: dict) -> str:
        a = self.scalar_expr(env, 1)
        op = self.rng.choice([">", "<", ">=", "<=", "==", "!="])
        b = str(round(self.rng.uniform(-1.0, 1.0), 2))
        return f"{a} {op} {b}"

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _stmt_assign_matrix(self, env: dict, body: list) -> None:
        shape = (self._dim(), self._dim())
        name = self._fresh("m")
        body.append(Raw(f"{name} = {self.matrix_expr(env, shape)};"))
        env[name] = shape

    def _stmt_assign_scalar(self, env: dict, body: list) -> None:
        name = self._fresh("s")
        body.append(Raw(f"{name} = {self.scalar_expr(env)};"))
        env[name] = SCALAR

    def _stmt_tsmm(self, env: dict, body: list) -> None:
        """``t(X) %*% X`` — the pattern the tsmm rewrite and the partial
        compensation plans (R4/R5) key on."""
        candidates = self._matrices(env)
        if not candidates:
            return self._stmt_assign_matrix(env, body)
        x = self.rng.choice(candidates)
        _, c = env[x]
        name = self._fresh("g")
        body.append(Raw(f"{name} = t({x}) %*% {x};"))
        env[name] = (c, c)

    def _stmt_aggregate(self, env: dict, body: list) -> None:
        candidates = self._matrices(env)
        if not candidates:
            return self._stmt_assign_scalar(env, body)
        x = self.rng.choice(candidates)
        r, c = env[x]
        fn = self.rng.choice(["colSums", "colMeans", "rowSums", "rowMeans",
                              "cumsum"])
        name = self._fresh("a")
        body.append(Raw(f"{name} = {fn}({x});"))
        env[name] = {"colSums": (1, c), "colMeans": (1, c),
                     "rowSums": (r, 1), "rowMeans": (r, 1),
                     "cumsum": (r, c)}[fn]

    def _stmt_index_read(self, env: dict, body: list) -> None:
        candidates = self._matrices(env)
        if not candidates:
            return self._stmt_assign_matrix(env, body)
        x = self.rng.choice(candidates)
        r, c = env[x]
        r1 = self.rng.randrange(1, r + 1)
        r2 = self.rng.randrange(r1, r + 1)
        c1 = self.rng.randrange(1, c + 1)
        c2 = self.rng.randrange(c1, c + 1)
        name = self._fresh("x")
        body.append(Raw(f"{name} = {x}[{r1}:{r2}, {c1}:{c2}];"))
        env[name] = (r2 - r1 + 1, c2 - c1 + 1)

    def _stmt_index_write(self, env: dict, body: list) -> None:
        candidates = self._matrices(env)
        if not candidates:
            return self._stmt_assign_matrix(env, body)
        x = self.rng.choice(candidates)
        r, c = env[x]
        r1 = self.rng.randrange(1, r + 1)
        r2 = self.rng.randrange(r1, r + 1)
        c1 = self.rng.randrange(1, c + 1)
        c2 = self.rng.randrange(c1, c + 1)
        sub = self.matrix_expr(env, (r2 - r1 + 1, c2 - c1 + 1), 1)
        body.append(Raw(f"{x}[{r1}:{r2}, {c1}:{c2}] = {sub};"))

    def _stmt_seq_table(self, env: dict, body: list) -> None:
        n = self._dim()
        name = self._fresh("q")
        body.append(Raw(f"{name} = seq(1, {n});"))
        env[name] = (n, 1)
        if self.rng.random() < 0.5:
            k = self.rng.randrange(2, 6)
            size = self.rng.randrange(2, 7)
            s1 = self._next_seed()
            s2 = self._next_seed()
            sname = self._fresh("s")
            body.append(Raw(
                f"{sname} = sum(table(sample({k}, {size}, TRUE, "
                f"seed={s1}), sample({k}, {size}, TRUE, seed={s2})));"))
            env[sname] = SCALAR

    def _stmt_solve(self, env: dict, body: list) -> None:
        """Well-conditioned linear algebra: ``t(X)X + 2.5I`` is PD."""
        n = self._dim()
        x = self.matrix_expr(env, (self._dim(), n), 1)
        g = self._fresh("g")
        body.append(Raw(
            f"{g} = t({x}) %*% {x} + diag(matrix(2.5, {n}, 1));"))
        env[g] = (n, n)
        name = self._fresh("b")
        if self.rng.random() < 0.5:
            rhs = self.matrix_expr(env, (n, 1), 1)
            body.append(Raw(f"{name} = solve({g}, {rhs});"))
            env[name] = (n, 1)
        else:
            body.append(Raw(f"{name} = inv({g});"))
            env[name] = (n, n)

    def _stmt_multiassign(self, env: dict, body: list) -> None:
        """``[w, V] = eigen(S)`` on a PD matrix.

        Only the (numerically stable) eigenvalue vector joins the
        environment; the vectors stay unused downstream.
        """
        n = self._dim()
        x = self.matrix_expr(env, (self._dim(), n), 1)
        g = self._fresh("g")
        body.append(Raw(
            f"{g} = t({x}) %*% {x} + diag(matrix(1.5, {n}, 1));"))
        env[g] = (n, n)
        w, v = self._fresh("w"), self._fresh("v")
        body.append(Raw(f"[{w}, {v}] = eigen({g});"))
        env[w] = (n, 1)

    def _stmt_print(self, env: dict, body: list) -> None:
        body.append(Raw(f'print("p" + {self.scalar_expr(env, 1)});'))

    def _stmt_if(self, env: dict, body: list, depth: int) -> None:
        """Both branches assign the same targets with the same shapes."""
        shape = (self._dim(), self._dim())
        target = self._fresh("m")
        node = Block(f"if ({self.bool_expr(env)})", tail="else")
        then_env = dict(env)
        else_env = dict(env)
        for benv, bbody in ((then_env, node.body), (else_env, node.tail_body)):
            for _ in range(self.rng.randrange(0, 2)):
                self._statement(benv, bbody, depth + 1)
            bbody.append(Raw(f"{target} = {self.matrix_expr(benv, shape)};"))
        body.append(node)
        env[target] = shape

    def _stmt_for(self, env: dict, body: list, depth: int) -> None:
        """Loop bodies redefine existing variables shape-preservingly."""
        iters = self.rng.randrange(2, 5)
        var = self._fresh("i")
        keyword = "for"
        node = Block(f"{keyword} ({var} in 1:{iters})")
        loop_env = dict(env)
        loop_env[var] = SCALAR
        for name in self._redefinition_targets(env):
            shape = env[name]
            if shape == SCALAR:
                node.body.append(Raw(
                    f"{name} = {name} * 0.5 + {self.scalar_expr(loop_env, 1)};"
                ))
            else:
                node.body.append(Raw(
                    f"{name} = {name} * 0.5 + "
                    f"{self.matrix_expr(loop_env, shape, 1)};"))
        if not node.body:
            acc = self._fresh("s")
            env[acc] = SCALAR
            body.append(Raw(f"{acc} = 0.0;"))
            node.body.append(Raw(f"{acc} = {acc} + {var};"))
        body.append(node)

    def _stmt_while(self, env: dict, body: list, depth: int) -> None:
        counter = self._fresh("k")
        bound = self.rng.randrange(2, 4)
        body.append(Raw(f"{counter} = 0;"))
        env[counter] = SCALAR
        node = Block(f"while ({counter} < {bound})")
        for name in self._redefinition_targets(env, limit=1):
            shape = env[name]
            if shape == SCALAR and name != counter:
                node.body.append(Raw(f"{name} = {name} * 0.5 + 1.0;"))
            elif shape != SCALAR:
                node.body.append(Raw(
                    f"{name} = {name} * 0.5 + "
                    f"{self.matrix_expr(env, shape, 1)};"))
        node.body.append(Raw(f"{counter} = {counter} + 1;"))
        body.append(node)

    def _stmt_parfor(self, env: dict, body: list, depth: int) -> None:
        """Disjoint column updates — the supported parfor merge pattern."""
        sources = [n for n, s in env.items()
                   if s != SCALAR and s[1] >= 2]
        if not sources:
            return self._stmt_assign_matrix(env, body)
        src = self.rng.choice(sources)
        r, c = env[src]
        target = self._fresh("m")
        body.append(Raw(f"{target} = {src} * 1.0;"))
        env[target] = (r, c)
        var = self._fresh("i")
        node = Block(f"parfor ({var} in 1:{c})")
        node.body.append(Raw(
            f"{target}[, {var}] = {src}[, {var}] * 0.5 + {var};"))
        body.append(node)

    def _stmt_funcdef_and_call(self, env: dict, body: list) -> None:
        if len(self.funcs) < 2 and self.rng.random() < 0.6:
            self._gen_funcdef()
        if not self.funcs:
            return self._stmt_assign_matrix(env, body)
        name, params, outs = self.rng.choice(self.funcs)
        args = ", ".join(self.matrix_expr(env, shape, 1)
                         for _, shape in params)
        if len(outs) == 1 or self.rng.random() < 0.5:
            target = self._fresh("r")
            body.append(Raw(f"{target} = {name}({args});"))
            env[target] = outs[0][1]
        else:
            targets = [self._fresh("r") for _ in outs]
            body.append(Raw(
                f"[{', '.join(targets)}] = {name}({args});"))
            for t, (_, shape) in zip(targets, outs):
                env[t] = shape

    def _gen_funcdef(self) -> None:
        name = self._fresh("f")
        params = [(self._fresh("p"), (self._dim(), self._dim()))
                  for _ in range(self.rng.randrange(1, 3))]
        fenv = {p: shape for p, shape in params}
        fbody: list = []
        for _ in range(self.rng.randrange(1, 3)):
            self.rng.choice([self._stmt_assign_matrix,
                             self._stmt_assign_scalar,
                             self._stmt_aggregate])(fenv, fbody)
        outs = []
        for _ in range(self.rng.randrange(1, 3)):
            oname = self._fresh("o")
            shape = (self._dim(), self._dim())
            fbody.append(Raw(f"{oname} = {self.matrix_expr(fenv, shape)};"))
            outs.append((oname, shape))
        sig = ", ".join(p for p, _ in params)
        ret = ", ".join(o for o, _ in outs)
        node = Block(f"{name} = function({sig}) return ({ret})", fbody)
        self.funcs.append((name, params, outs))
        self._funcdefs.append(node)

    def _redefinition_targets(self, env: dict, limit: int = 2) -> list[str]:
        names = list(env)
        self.rng.shuffle(names)
        return names[:self.rng.randrange(1, limit + 1)]

    # ------------------------------------------------------------------
    # program assembly
    # ------------------------------------------------------------------

    def _statement(self, env: dict, body: list, depth: int) -> None:
        choices = [
            (self._stmt_assign_matrix, 20),
            (self._stmt_assign_scalar, 10),
            (self._stmt_tsmm, 8),
            (self._stmt_aggregate, 8),
            (self._stmt_index_read, 7),
            (self._stmt_index_write, 6),
            (self._stmt_seq_table, 4),
            (self._stmt_solve, 4),
            (self._stmt_multiassign, 4),
            (self._stmt_print, 4),
            (self._stmt_funcdef_and_call, 6),
        ]
        blocks = [
            (self._stmt_if, 6),
            (self._stmt_for, 6),
            (self._stmt_while, 3),
            (self._stmt_parfor, 4),
        ]
        if depth < 2:
            choices += blocks
        total = sum(w for _, w in choices)
        roll = self.rng.uniform(0, total)
        for fn, weight in choices:
            roll -= weight
            if roll <= 0:
                break
        if fn in dict(blocks):
            fn(env, body, depth)
        else:
            fn(env, body)

    def generate(self) -> GeneratedProgram:
        self._reset()
        self._funcdefs: list = []
        env: dict = {}
        body: list = []
        # a few base matrices so early statements have material to work on
        for _ in range(self.rng.randrange(2, 4)):
            self._stmt_assign_matrix(env, body)
        for _ in range(self.size):
            self._statement(env, body, 0)
        outputs = sorted(env)
        nodes = self._funcdefs + body
        program = GeneratedProgram(nodes=nodes, outputs=outputs,
                                   seed=self.seed)
        return program


def generate_program(seed: int, size: int = 10) -> GeneratedProgram:
    """Convenience wrapper: one program for one seed."""
    return ProgramGenerator(seed, size=size).generate()
