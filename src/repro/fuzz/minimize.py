"""Delta-debugging minimizer for failing generated programs.

Purely trial-based: the minimizer proposes structurally smaller program
candidates — dropping statements, unwrapping control-flow blocks,
shrinking integer literals — and keeps a candidate only when the caller's
``check`` predicate confirms it still fails *the same way* (same config,
same failure kind, same error type).  Candidates that no longer compile
simply fail the predicate and are rejected, so no semantic knowledge of
the grammar is needed beyond recomputing which output variables survive.
"""

from __future__ import annotations

import re

from repro.fuzz.generator import Block, GeneratedProgram, Raw

#: cap on predicate evaluations per minimization (each runs the lattice)
MAX_CHECKS = 300

_ASSIGN = re.compile(r"^\s*([A-Za-z_]\w*)\s*=[^=]")
_MULTI_ASSIGN = re.compile(r"^\s*\[([^\]]+)\]\s*=")
_INT = re.compile(r"\b\d+\b")


def _clone(nodes: list) -> list:
    out = []
    for node in nodes:
        if isinstance(node, Raw):
            out.append(Raw(node.text))
        else:
            out.append(Block(node.header, _clone(node.body), node.tail,
                             _clone(node.tail_body)))
    return out


def assigned_names(nodes: list) -> set[str]:
    """Variables assigned anywhere in the IR (function defs excluded)."""
    names: set[str] = set()
    for node in nodes:
        if isinstance(node, Raw):
            match = _MULTI_ASSIGN.match(node.text)
            if match:
                names.update(p.strip() for p in match.group(1).split(","))
                continue
            match = _ASSIGN.match(node.text)
            if match:
                names.add(match.group(1))
        elif "function" not in node.header:
            names.update(assigned_names(node.body))
            names.update(assigned_names(node.tail_body))
    return names


def _candidate(program: GeneratedProgram, nodes: list) -> GeneratedProgram:
    live = assigned_names(nodes)
    outputs = [o for o in program.outputs if o in live]
    return GeneratedProgram(nodes=nodes, outputs=outputs,
                            seed=program.seed)


def _slots(nodes: list):
    """Every (parent list, index) removal site, innermost last."""
    sites = []
    for i, node in enumerate(nodes):
        sites.append((nodes, i))
        if isinstance(node, Block):
            sites.extend(_slots(node.body))
            sites.extend(_slots(node.tail_body))
    return sites


class _Budget:
    def __init__(self, check, limit: int):
        self.check = check
        self.left = limit

    def __call__(self, candidate) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        return self.check(candidate)


def minimize(program: GeneratedProgram, check,
             max_checks: int = MAX_CHECKS) -> GeneratedProgram:
    """Shrink ``program`` while ``check(candidate)`` keeps returning True.

    ``check`` must already hold for ``program`` itself; the result is
    1-minimal w.r.t. the transformations (statement removal, block
    unwrapping, integer shrinking) up to the check budget.
    """
    budget = _Budget(check, max_checks)
    current = program
    changed = True
    while changed and budget.left > 0:
        changed = (_pass_remove(current, budget)
                   or _pass_unwrap(current, budget)
                   or _pass_shrink_ints(current, budget)
                   or _pass_drop_outputs(current, budget))
        if changed is not None and changed is not False:
            current = changed
            changed = True
        else:
            changed = False
    return current


def _pass_remove(program: GeneratedProgram, budget):
    """Drop one statement (trying larger chunks first, ddmin-style)."""
    nodes = program.nodes
    # chunked removal over the top level first
    size = max(len(nodes) // 2, 1)
    while size >= 1:
        start = 0
        while start < len(nodes):
            trial = nodes[:start] + nodes[start + size:]
            if trial and len(trial) < len(nodes):
                candidate = _candidate(program, _clone(trial))
                if candidate.outputs and budget(candidate):
                    return candidate
            start += size
        if size == 1:
            break
        size //= 2
    # then single statements anywhere in the tree (innermost first);
    # slots are recomputed per clone — _slots orders them identically
    total = len(_slots(nodes))
    for site_no in reversed(range(total)):
        trial_nodes = _clone(nodes)
        parent, index = _slots(trial_nodes)[site_no]
        del parent[index]
        candidate = _candidate(program, trial_nodes)
        if candidate.outputs and budget(candidate):
            return candidate
    return None


def _pass_unwrap(program: GeneratedProgram, budget):
    """Replace one block by its body (or its else-body)."""
    original_sites = _slots(program.nodes)
    for site_no, (parent, index) in enumerate(original_sites):
        node = parent[index]
        if not isinstance(node, Block) or "function" in node.header:
            continue
        for replacement in (node.body, node.tail_body):
            trial_nodes = _clone(program.nodes)
            clone_sites = _slots(trial_nodes)
            cp, ci = clone_sites[site_no]
            cloned = cp[ci]
            repl = (cloned.body if replacement is node.body
                    else cloned.tail_body)
            cp[ci:ci + 1] = repl
            candidate = _candidate(program, trial_nodes)
            if candidate.outputs and budget(candidate):
                return candidate
    return None


def _iter_raws(nodes: list):
    for node in nodes:
        if isinstance(node, Raw):
            yield node
        else:
            yield from _iter_raws(node.body)
            yield from _iter_raws(node.tail_body)


def _pass_shrink_ints(program: GeneratedProgram, budget):
    """Shrink one integer literal (dims, loop bounds, index ranges)."""
    raws = list(_iter_raws(program.nodes))
    for raw_no, raw in enumerate(raws):
        for match in _INT.finditer(raw.text):
            value = int(match.group())
            for smaller in (1, value // 2):
                if smaller >= value or smaller < 1:
                    continue
                trial_nodes = _clone(program.nodes)
                trial_raw = list(_iter_raws(trial_nodes))[raw_no]
                trial_raw.text = (raw.text[:match.start()] + str(smaller)
                                  + raw.text[match.end():])
                candidate = _candidate(program, trial_nodes)
                if candidate.outputs and budget(candidate):
                    return candidate
    return None


def _pass_drop_outputs(program: GeneratedProgram, budget):
    """Shrink the compared output set (keeps the repro surface small)."""
    if len(program.outputs) <= 1:
        return None
    for drop in program.outputs:
        outputs = [o for o in program.outputs if o != drop]
        candidate = GeneratedProgram(nodes=_clone(program.nodes),
                                     outputs=outputs, seed=program.seed)
        if budget(candidate):
            return candidate
    return None
