"""Differential DML fuzzing: generator, executor, minimizer, campaign.

The subsystem attacks LIMA's core claim — that full reuse, partial reuse
with compensation plans, deduplication, multi-level reuse, eviction and
spilling, and parfor all preserve the results of plain re-execution —
with randomly composed, shape-correct DML programs run under a lattice of
configurations and compared against the no-reuse baseline.

* :mod:`repro.fuzz.generator` — seeded, grammar-based program generation
* :mod:`repro.fuzz.differential` — the config lattice and result oracle
* :mod:`repro.fuzz.minimize` — delta-debugging shrinker for failures
* :mod:`repro.fuzz.campaign` — the ``repro fuzz`` campaign driver
"""

from repro.fuzz.differential import (CONFIG_LATTICE, DifferentialFailure,
                                     run_differential)
from repro.fuzz.generator import GeneratedProgram, ProgramGenerator
from repro.fuzz.minimize import minimize
from repro.fuzz.campaign import run_campaign

__all__ = [
    "CONFIG_LATTICE",
    "DifferentialFailure",
    "GeneratedProgram",
    "ProgramGenerator",
    "minimize",
    "run_campaign",
    "run_differential",
]
