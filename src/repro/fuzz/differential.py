"""Differential execution of one program under the configuration lattice.

Every configuration runs the program **twice** in one session (the second
run exercises cross-invocation reuse, where the cache is hot) and each
run's outputs are compared against a no-reuse base reference:

* configurations without partial reuse must reproduce the base results
  **bit-identically** (LIMA's Section 3–4 claim);
* partial-reuse compensation plans reassociate floating-point reductions,
  so configurations with ``reuse_partial`` are compared within the
  repo-wide ``rtol=atol=1e-9`` tolerance (matching
  ``tests/test_equivalence.py``), and printed output numerically.

On top of output equivalence the executor asserts the cache-statistics
invariants that hold by construction of the acquire/fulfill protocol:

* ``hits + misses <= probes`` (an acquire that parks on a placeholder
  counts a probe but resolves to a hit — or to nothing, on abort — later);
* ``probes - hits - misses <= placeholder_waits``;
* ``partial_hits <= partial_probes``;
* the unified memory manager never sits above its budget at quiescence
  unless it explicitly degraded.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.api import LimaSession
from repro.config import LimaConfig

#: tolerance for configurations whose compensation plans reassociate FP
RTOL = 1e-9
ATOL = 1e-9

#: name -> config factory; ``base`` is implicit (the reference run)
CONFIG_LATTICE: dict = {
    "lt": LimaConfig.lt,
    "ltd": LimaConfig.ltd,
    "full": LimaConfig.full,
    "multilevel": LimaConfig.multilevel,
    "hybrid": LimaConfig.hybrid,
    "ca": LimaConfig.ca,
    "fusion": lambda: LimaConfig.hybrid().with_(fusion=True),
    "parfor-seq": lambda: LimaConfig.full().with_(parfor_workers=1),
    "parfor-4": lambda: LimaConfig.hybrid().with_(parfor_workers=4),
    "tight": lambda: LimaConfig.full().with_(memory_budget=64 * 1024),
    "chaos-spill": lambda: LimaConfig.full().with_(
        memory_budget=64 * 1024,
        fault_specs=("spill.read:corrupt:rate=0.3,seed=7",)),
    "verify": lambda: LimaConfig.hybrid().with_(verify_reuse=1.0),
    # two concurrent service sessions share one reuse cache; both must
    # still match the sequential base reference (the executor recognizes
    # the "service-concurrent-N" name pattern and routes through Service)
    "service-concurrent-2": LimaConfig.hybrid,
}

_SERVICE_CONFIG = re.compile(r"^service-concurrent-(\d+)$")


@dataclass
class DifferentialFailure:
    """One divergence between a configuration and the base reference."""

    config: str
    kind: str       # error | base-error | output | stdout | stats
    detail: str
    error_type: str | None = None

    @property
    def signature(self) -> tuple:
        """What the minimizer must preserve while shrinking."""
        return (self.config, self.kind, self.error_type)

    def __str__(self) -> str:
        return f"[{self.config}] {self.kind}: {self.detail}"


def run_differential(source: str, outputs: list[str],
                     configs: dict | None = None,
                     seed: int = 1234, runs: int = 2):
    """Run ``source`` under the lattice; first divergence or ``None``.

    ``outputs`` names the variables compared against the base reference;
    ``seed`` is the session seed shared by every configuration so any
    residual system-seed dependence is identical across the lattice.
    """
    configs = CONFIG_LATTICE if configs is None else configs
    try:
        reference = _run_once(LimaConfig.base(), source, outputs, seed)
    except Exception as exc:  # the generator promises base always runs
        return DifferentialFailure(
            "base", "base-error", f"{type(exc).__name__}: {exc}",
            error_type=type(exc).__name__)
    for name, factory in configs.items():
        config = factory()
        exact = not config.reuse_partial
        concurrent = _SERVICE_CONFIG.match(name)
        if concurrent is not None:
            failure = _run_service(name, config, source, outputs, seed,
                                   reference, exact,
                                   sessions=int(concurrent.group(1)))
            if failure is not None:
                return failure
            continue
        session = LimaSession(config, seed=seed)
        try:
            for round_no in range(runs):
                result = session.run(source, inputs={}, seed=seed)
                got = {o: result.get(o) for o in outputs}
                failure = _compare_outputs(name, round_no, reference,
                                           got, exact)
                if failure is None and round_no == 0:
                    failure = _compare_stdout(name, reference["stdout"],
                                              result.stdout, exact)
                if failure is None:
                    failure = _check_stats(name, session)
                if failure is not None:
                    return failure
        except Exception as exc:
            return DifferentialFailure(
                name, "error", f"{type(exc).__name__}: {exc}",
                error_type=type(exc).__name__)
    return None


def _run_service(name, config, source, outputs, seed, reference, exact,
                 sessions=2):
    """Run ``sessions`` concurrent service sessions over one shared
    cache; every session's outputs must match the base reference."""
    from repro.service.service import Service
    service = Service(config, workers=max(2, sessions), seed=seed)
    try:
        handles = [service.submit(source, seed=seed)
                   for _ in range(sessions)]
        for handle in handles:
            result = handle.result(timeout=300)
            got = {o: result.get(o) for o in outputs}
            failure = _compare_outputs(name, 0, reference, got, exact)
            if failure is None:
                failure = _compare_stdout(name, reference["stdout"],
                                          result.stdout, exact)
            if failure is not None:
                failure.detail = (f"session {handle.session_id}: "
                                  + failure.detail)
                return failure
        if service.cache is not None and service.cache.open_placeholders():
            return DifferentialFailure(
                name, "stats",
                f"{len(service.cache.open_placeholders())} placeholder(s) "
                "left open after all sessions drained")
    except Exception as exc:
        return DifferentialFailure(
            name, "error", f"{type(exc).__name__}: {exc}",
            error_type=type(exc).__name__)
    finally:
        service.shutdown()
    return None


def _run_once(config: LimaConfig, source: str, outputs: list[str],
              seed: int) -> dict:
    session = LimaSession(config, seed=seed)
    result = session.run(source, inputs={}, seed=seed)
    return {"values": {o: result.get(o) for o in outputs},
            "stdout": list(result.stdout)}


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------

def values_equal(a, b, exact: bool) -> bool:
    """Equivalence of two exported values under the comparison mode."""
    if isinstance(a, str) or isinstance(b, str):
        return a == b
    if isinstance(a, list) or isinstance(b, list):
        return (isinstance(a, list) and isinstance(b, list)
                and len(a) == len(b)
                and all(values_equal(x, y, exact) for x, y in zip(a, b)))
    aa, bb = np.asarray(a), np.asarray(b)
    if aa.shape != bb.shape:
        return False
    if exact:
        return aa.dtype == bb.dtype and aa.tobytes() == bb.tobytes()
    return bool(np.allclose(aa, bb, rtol=RTOL, atol=ATOL, equal_nan=True))


def _compare_outputs(name, round_no, reference, got, exact):
    for var, expected in reference["values"].items():
        actual = got[var]
        if not values_equal(expected, actual, exact):
            return DifferentialFailure(
                name, "output",
                f"run {round_no + 1}: variable {var!r} diverges "
                f"(exact={exact}): base={_fmt(expected)} "
                f"vs {_fmt(actual)}")
    return None


_NUMBER = re.compile(r"[-+]?\d+\.?\d*(?:[eE][-+]?\d+)?|nan|inf|-inf")


def _compare_stdout(name, expected, actual, exact):
    if exact:
        if expected != actual:
            return DifferentialFailure(
                name, "stdout",
                f"stdout diverges: base={expected!r} vs {actual!r}")
        return None
    # partial configs may print the same numbers with different last
    # digits: compare the non-numeric skeleton exactly and every embedded
    # number within tolerance
    if len(expected) != len(actual):
        return DifferentialFailure(
            name, "stdout",
            f"stdout line count {len(actual)} != base {len(expected)}")
    for e_line, a_line in zip(expected, actual):
        if _NUMBER.sub("#", e_line) != _NUMBER.sub("#", a_line):
            return DifferentialFailure(
                name, "stdout",
                f"stdout diverges: base={e_line!r} vs {a_line!r}")
        e_nums = [float(t) for t in _NUMBER.findall(e_line)]
        a_nums = [float(t) for t in _NUMBER.findall(a_line)]
        if not np.allclose(e_nums, a_nums, rtol=1e-6, atol=1e-6,
                           equal_nan=True):
            return DifferentialFailure(
                name, "stdout",
                f"stdout numbers diverge: base={e_line!r} vs {a_line!r}")
    return None


def _check_stats(name, session):
    stats = session.stats
    if stats.hits + stats.misses > stats.probes:
        return DifferentialFailure(
            name, "stats",
            f"hits({stats.hits}) + misses({stats.misses}) > "
            f"probes({stats.probes})")
    gap = stats.probes - stats.hits - stats.misses
    if gap > stats.placeholder_waits:
        return DifferentialFailure(
            name, "stats",
            f"probe gap {gap} exceeds placeholder_waits"
            f"({stats.placeholder_waits})")
    if stats.partial_hits > stats.partial_probes:
        return DifferentialFailure(
            name, "stats",
            f"partial_hits({stats.partial_hits}) > "
            f"partial_probes({stats.partial_probes})")
    memory = session.memory
    if (memory is not None and not memory.degraded
            and memory.total > memory.budget):
        return DifferentialFailure(
            name, "stats",
            f"memory total {memory.total} exceeds budget {memory.budget} "
            "without degradation")
    return None


def _fmt(value) -> str:
    text = repr(value)
    return text if len(text) <= 200 else text[:200] + "..."
