"""The DML-like scripting language frontend (lexer, parser, AST)."""

from repro.lang.parser import parse
from repro.lang.lexer import tokenize

__all__ = ["parse", "tokenize"]
