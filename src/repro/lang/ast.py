"""AST node definitions for the DML-like language.

All nodes are plain dataclasses; expression nodes carry the source line for
error reporting.  The AST is consumed by :mod:`repro.compiler.compiler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Node:
    """Base class of all AST nodes."""


class Expr(Node):
    """Base class of expression nodes."""
    line: int = 0


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass
class NumLit(Expr):
    value: float
    line: int = 0

    @property
    def is_int(self) -> bool:
        return float(self.value).is_integer()


@dataclass
class StrLit(Expr):
    value: str
    line: int = 0


@dataclass
class BoolLit(Expr):
    value: bool
    line: int = 0


@dataclass
class Var(Expr):
    name: str
    line: int = 0


@dataclass
class BinOp(Expr):
    """Binary operation; ``op`` is the surface operator (e.g. ``%*%``)."""
    op: str
    left: Expr
    right: Expr
    line: int = 0


@dataclass
class UnaryOp(Expr):
    op: str  # "-" or "!"
    operand: Expr
    line: int = 0


@dataclass
class Call(Expr):
    """Function or builtin call, with positional and named arguments."""
    name: str
    args: list[Expr] = field(default_factory=list)
    named_args: dict[str, Expr] = field(default_factory=dict)
    line: int = 0


@dataclass
class IndexSpec(Node):
    """One dimension of an index expression.

    Exactly one of the following shapes:

    * ``all`` — the dimension is unrestricted (``X[, j]``),
    * ``index`` — a single scalar or an index-vector expression,
    * ``lo:hi`` range — both bounds set.
    """
    all: bool = False
    index: Expr | None = None
    lo: Expr | None = None
    hi: Expr | None = None

    @property
    def is_range(self) -> bool:
        return self.lo is not None


@dataclass
class Index(Expr):
    """Right indexing ``X[rows, cols]`` (1-based, inclusive ranges)."""
    obj: Expr
    rows: IndexSpec = field(default_factory=lambda: IndexSpec(all=True))
    cols: IndexSpec = field(default_factory=lambda: IndexSpec(all=True))
    line: int = 0


@dataclass
class RangeExpr(Expr):
    """``lo:hi`` used as a value (compiles to a ``seq`` row of indices)."""
    lo: Expr
    hi: Expr
    line: int = 0


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

class Stmt(Node):
    """Base class of statement nodes."""
    line: int = 0


@dataclass
class Assign(Stmt):
    """``target = expr`` — plain variable assignment."""
    target: str
    expr: Expr
    line: int = 0


@dataclass
class IndexedAssign(Stmt):
    """``X[i, j] = expr`` — left indexing (copy-on-write update)."""
    target: str
    rows: IndexSpec
    cols: IndexSpec
    expr: Expr
    line: int = 0


@dataclass
class MultiAssign(Stmt):
    """``[a, b] = f(...)`` — multi-return function call."""
    targets: list[str]
    call: Call
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    """A bare expression statement (e.g. ``print(...)``)."""
    expr: Expr
    line: int = 0


@dataclass
class If(Stmt):
    cond: Expr
    then_body: list[Stmt]
    else_body: list[Stmt] = field(default_factory=list)
    line: int = 0
    #: branch position id assigned during dedup setup (Section 3.2)
    branch_id: int = -1


@dataclass
class For(Stmt):
    """``for``/``parfor`` loop over an integer range or a vector."""
    var: str
    seq: Expr                 # RangeExpr or vector expression
    body: list[Stmt] = field(default_factory=list)
    parallel: bool = False    # True for parfor
    line: int = 0


@dataclass
class While(Stmt):
    cond: Expr
    body: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Param(Node):
    """A function parameter with an optional default expression."""
    name: str
    default: Expr | None = None


@dataclass
class FuncDef(Stmt):
    """``name = function(params) return (outputs) { body }``"""
    name: str
    params: list[Param]
    outputs: list[str]
    body: list[Stmt]
    line: int = 0


@dataclass
class Script(Node):
    """A parsed script: top-level statements plus function definitions."""
    statements: list[Stmt] = field(default_factory=list)
    functions: dict[str, FuncDef] = field(default_factory=dict)
