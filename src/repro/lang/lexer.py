"""Tokenizer for the DML-like scripting language.

The language uses R-like syntax (as in the paper's Example 1): ``%*%`` for
matrix multiplication, ``<-`` or ``=`` for assignment, ``#`` comments,
``1:n`` ranges, and braces for blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LimaSyntaxError

KEYWORDS = frozenset({
    "if", "else", "for", "parfor", "while", "in",
    "function", "return", "TRUE", "FALSE",
})

#: multi-character operators, longest first so maximal munch works
_MULTI_OPS = [
    "%*%", "%%", "%/%",
    "<-", "==", "!=", "<=", ">=", "&&", "||",
]

_SINGLE_OPS = set("+-*/^<>=!&|:,;()[]{}")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its 1-based source position."""

    type: str   # ID, NUM, STR, KW, OP, EOF
    value: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.col})"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list of tokens ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(text)

    def error(msg: str):
        raise LimaSyntaxError(msg, line, col)

    while i < n:
        ch = text[i]
        # whitespace / newlines
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # comments run to end of line
        if ch == "#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, col
        # string literals, single or double quoted
        if ch in "'\"":
            quote = ch
            j = i + 1
            buf = []
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    esc = text[j + 1]
                    buf.append({"n": "\n", "t": "\t", "\\": "\\",
                                "'": "'", '"': '"'}.get(esc, esc))
                    j += 2
                elif text[j] == "\n":
                    error("unterminated string literal")
                else:
                    buf.append(text[j])
                    j += 1
            if j >= n:
                error("unterminated string literal")
            tokens.append(Token("STR", "".join(buf), start_line, start_col))
            col += (j + 1 - i)
            i = j + 1
            continue
        # numbers: ints, floats, scientific notation
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    j = k
                    while j < n and text[j].isdigit():
                        j += 1
            tokens.append(Token("NUM", text[i:j], start_line, start_col))
            col += j - i
            i = j
            continue
        # identifiers and keywords
        if ch.isalpha() or ch == "_" or ch == ".":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "._"):
                j += 1
            word = text[i:j]
            kind = "KW" if word in KEYWORDS else "ID"
            tokens.append(Token(kind, word, start_line, start_col))
            col += j - i
            i = j
            continue
        # multi-char operators (maximal munch)
        matched = False
        for op in _MULTI_OPS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, start_line, start_col))
                i += len(op)
                col += len(op)
                matched = True
                break
        if matched:
            continue
        # single-char operators
        if ch in _SINGLE_OPS:
            tokens.append(Token("OP", ch, start_line, start_col))
            i += 1
            col += 1
            continue
        error(f"unexpected character {ch!r}")

    tokens.append(Token("EOF", "", line, col))
    return tokens
