"""Recursive-descent parser for the DML-like language.

Operator precedence follows R (which the paper's DML mirrors), from loosest
to tightest::

    |  ||          logical or
    &  &&          logical and
    !              logical not
    == != < > <= >= comparison
    + -            additive
    * /            multiplicative
    %*% %% %/%     matrix multiply, modulo, integer division
    :              range
    - +            unary sign
    ^              power (right associative)
    postfix        indexing X[i,j], calls f(x)
"""

from __future__ import annotations

from repro.errors import LimaSyntaxError
from repro.lang import ast
from repro.lang.lexer import Token, tokenize


def parse(text: str) -> ast.Script:
    """Parse script ``text`` into an :class:`~repro.lang.ast.Script`."""
    return _Parser(tokenize(text)).parse_script()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        # inside index specs, ':' separates bounds at lowest precedence
        # (DML semantics: X[(i-1)*b+1 : i*b, ]), so range parsing in the
        # normal precedence chain is suspended there
        self._suspend_range = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type != "EOF":
            self.pos += 1
        return tok

    def check(self, type_: str, value: str | None = None,
              offset: int = 0) -> bool:
        tok = self.peek(offset)
        return tok.type == type_ and (value is None or tok.value == value)

    def check_op(self, *values: str, offset: int = 0) -> bool:
        tok = self.peek(offset)
        return tok.type == "OP" and tok.value in values

    def expect(self, type_: str, value: str | None = None) -> Token:
        tok = self.peek()
        if tok.type != type_ or (value is not None and tok.value != value):
            want = value if value is not None else type_
            raise LimaSyntaxError(
                f"expected {want!r}, found {tok.value or tok.type!r}",
                tok.line, tok.col)
        return self.advance()

    def skip_semicolons(self) -> None:
        while self.check_op(";"):
            self.advance()

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def parse_script(self) -> ast.Script:
        script = ast.Script()
        self.skip_semicolons()
        while not self.check("EOF"):
            stmt = self.parse_statement()
            if isinstance(stmt, ast.FuncDef):
                if stmt.name in script.functions:
                    raise LimaSyntaxError(
                        f"function {stmt.name!r} redefined", stmt.line, 0)
                script.functions[stmt.name] = stmt
            else:
                script.statements.append(stmt)
            self.skip_semicolons()
        return script

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.type == "KW":
            if tok.value == "if":
                return self.parse_if()
            if tok.value in ("for", "parfor"):
                return self.parse_for()
            if tok.value == "while":
                return self.parse_while()
        if self.check_op("["):
            return self.parse_multi_assign()
        if tok.type == "ID":
            # name = function(...) — function definition
            if (self.check_op("=", "<-", offset=1)
                    and self.check("KW", "function", offset=2)):
                return self.parse_funcdef()
            # name = expr — plain assignment
            if self.check_op("=", "<-", offset=1):
                return self.parse_assign()
            # name[specs] = expr — indexed assignment
            if self.check_op("[", offset=1):
                end = self._find_matching_bracket(self.pos + 1)
                if end >= 0 and (self._is_op_at(end + 1, "=")
                                 or self._is_op_at(end + 1, "<-")):
                    return self.parse_indexed_assign()
        # fall back to expression statement
        expr = self.parse_expr()
        return ast.ExprStmt(expr, line=tok.line)

    def _is_op_at(self, index: int, value: str) -> bool:
        if index >= len(self.tokens):
            return False
        tok = self.tokens[index]
        return tok.type == "OP" and tok.value == value

    def _find_matching_bracket(self, open_pos: int) -> int:
        """Index of the ``]`` matching the ``[`` at ``open_pos``, or -1."""
        depth = 0
        for i in range(open_pos, len(self.tokens)):
            tok = self.tokens[i]
            if tok.type != "OP":
                continue
            if tok.value in ("[", "(", "{"):
                depth += 1
            elif tok.value in ("]", ")", "}"):
                depth -= 1
                if depth == 0:
                    return i
        return -1

    def parse_assign(self) -> ast.Assign:
        name_tok = self.expect("ID")
        self.advance()  # '=' or '<-'
        expr = self.parse_expr()
        return ast.Assign(name_tok.value, expr, line=name_tok.line)

    def parse_indexed_assign(self) -> ast.IndexedAssign:
        name_tok = self.expect("ID")
        rows, cols = self.parse_index_specs()
        self.advance()  # '=' or '<-'
        expr = self.parse_expr()
        return ast.IndexedAssign(name_tok.value, rows, cols, expr,
                                 line=name_tok.line)

    def parse_multi_assign(self) -> ast.MultiAssign:
        open_tok = self.expect("OP", "[")
        targets = [self.expect("ID").value]
        while self.check_op(","):
            self.advance()
            targets.append(self.expect("ID").value)
        self.expect("OP", "]")
        if self.check_op("<-"):
            self.advance()
        else:
            self.expect("OP", "=")
        expr = self.parse_expr()
        if not isinstance(expr, ast.Call):
            raise LimaSyntaxError("multi-assignment requires a function call",
                                  open_tok.line, open_tok.col)
        return ast.MultiAssign(targets, expr, line=open_tok.line)

    def parse_funcdef(self) -> ast.FuncDef:
        name_tok = self.expect("ID")
        self.advance()  # '=' or '<-'
        self.expect("KW", "function")
        self.expect("OP", "(")
        params: list[ast.Param] = []
        while not self.check_op(")"):
            pname = self.expect("ID").value
            default = None
            if self.check_op("="):
                self.advance()
                default = self.parse_expr()
            params.append(ast.Param(pname, default))
            if self.check_op(","):
                self.advance()
        self.expect("OP", ")")
        self.expect("KW", "return")
        self.expect("OP", "(")
        outputs: list[str] = []
        while not self.check_op(")"):
            outputs.append(self.expect("ID").value)
            if self.check_op(","):
                self.advance()
        self.expect("OP", ")")
        body = self.parse_block()
        return ast.FuncDef(name_tok.value, params, outputs, body,
                           line=name_tok.line)

    def parse_if(self) -> ast.If:
        tok = self.expect("KW", "if")
        self.expect("OP", "(")
        cond = self.parse_expr()
        self.expect("OP", ")")
        then_body = self.parse_block()
        else_body: list[ast.Stmt] = []
        self.skip_semicolons()
        if self.check("KW", "else"):
            self.advance()
            if self.check("KW", "if"):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return ast.If(cond, then_body, else_body, line=tok.line)

    def parse_for(self) -> ast.For:
        tok = self.advance()  # for | parfor
        parallel = tok.value == "parfor"
        self.expect("OP", "(")
        var = self.expect("ID").value
        self.expect("KW", "in")
        seq = self.parse_expr()
        self.expect("OP", ")")
        body = self.parse_block()
        return ast.For(var, seq, body, parallel=parallel, line=tok.line)

    def parse_while(self) -> ast.While:
        tok = self.expect("KW", "while")
        self.expect("OP", "(")
        cond = self.parse_expr()
        self.expect("OP", ")")
        body = self.parse_block()
        return ast.While(cond, body, line=tok.line)

    def parse_block(self) -> list[ast.Stmt]:
        if self.check_op("{"):
            self.advance()
            body: list[ast.Stmt] = []
            self.skip_semicolons()
            while not self.check_op("}"):
                if self.check("EOF"):
                    tok = self.peek()
                    raise LimaSyntaxError("unexpected end of script in block",
                                          tok.line, tok.col)
                body.append(self.parse_statement())
                self.skip_semicolons()
            self.advance()
            return body
        return [self.parse_statement()]

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.check_op("|", "||"):
            tok = self.advance()
            right = self.parse_and()
            left = ast.BinOp("|", left, right, line=tok.line)
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.check_op("&", "&&"):
            tok = self.advance()
            right = self.parse_not()
            left = ast.BinOp("&", left, right, line=tok.line)
        return left

    def parse_not(self) -> ast.Expr:
        if self.check_op("!"):
            tok = self.advance()
            return ast.UnaryOp("!", self.parse_not(), line=tok.line)
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        while self.check_op("==", "!=", "<", ">", "<=", ">="):
            tok = self.advance()
            right = self.parse_additive()
            left = ast.BinOp(tok.value, left, right, line=tok.line)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.check_op("+", "-"):
            tok = self.advance()
            right = self.parse_multiplicative()
            left = ast.BinOp(tok.value, left, right, line=tok.line)
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_special()
        while self.check_op("*", "/"):
            tok = self.advance()
            right = self.parse_special()
            left = ast.BinOp(tok.value, left, right, line=tok.line)
        return left

    def parse_special(self) -> ast.Expr:
        left = self.parse_range()
        while self.check_op("%*%", "%%", "%/%"):
            tok = self.advance()
            right = self.parse_range()
            left = ast.BinOp(tok.value, left, right, line=tok.line)
        return left

    def parse_range(self) -> ast.Expr:
        left = self.parse_unary()
        if self.check_op(":") and not self._suspend_range:
            tok = self.advance()
            right = self.parse_unary()
            return ast.RangeExpr(left, right, line=tok.line)
        return left

    def parse_unary(self) -> ast.Expr:
        if self.check_op("-"):
            tok = self.advance()
            operand = self.parse_unary()
            # fold negative numeric literals for cleaner lineage leaves
            if isinstance(operand, ast.NumLit):
                return ast.NumLit(-operand.value, line=tok.line)
            return ast.UnaryOp("-", operand, line=tok.line)
        if self.check_op("+"):
            self.advance()
            return self.parse_unary()
        return self.parse_power()

    def parse_power(self) -> ast.Expr:
        base = self.parse_postfix()
        if self.check_op("^"):
            tok = self.advance()
            exponent = self.parse_unary()  # right associative
            return ast.BinOp("^", base, exponent, line=tok.line)
        return base

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.check_op("["):
                rows, cols = self.parse_index_specs()
                expr = ast.Index(expr, rows, cols, line=self.peek().line)
            else:
                break
        return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.type == "NUM":
            self.advance()
            return ast.NumLit(float(tok.value), line=tok.line)
        if tok.type == "STR":
            self.advance()
            return ast.StrLit(tok.value, line=tok.line)
        if tok.type == "KW" and tok.value in ("TRUE", "FALSE"):
            self.advance()
            return ast.BoolLit(tok.value == "TRUE", line=tok.line)
        if tok.type == "ID":
            self.advance()
            if self.check_op("("):
                return self.parse_call(tok)
            return ast.Var(tok.value, line=tok.line)
        if self.check_op("("):
            self.advance()
            suspended = self._suspend_range
            self._suspend_range = 0  # ranges are legal inside parentheses
            expr = self.parse_expr()
            self._suspend_range = suspended
            self.expect("OP", ")")
            return expr
        raise LimaSyntaxError(
            f"unexpected token {tok.value or tok.type!r}", tok.line, tok.col)

    def parse_call(self, name_tok: Token) -> ast.Call:
        self.expect("OP", "(")
        suspended = self._suspend_range
        self._suspend_range = 0  # ranges are legal inside call arguments
        args: list[ast.Expr] = []
        named: dict[str, ast.Expr] = {}
        while not self.check_op(")"):
            # named argument: ID '=' expr (but not ID '==' ...)
            if (self.check("ID") and self.check_op("=", offset=1)):
                key = self.advance().value
                self.advance()
                named[key] = self.parse_expr()
            else:
                if named:
                    tok = self.peek()
                    raise LimaSyntaxError(
                        "positional argument after named argument",
                        tok.line, tok.col)
                args.append(self.parse_expr())
            if self.check_op(","):
                self.advance()
            elif not self.check_op(")"):
                tok = self.peek()
                raise LimaSyntaxError(
                    f"expected ',' or ')' in call, found {tok.value!r}",
                    tok.line, tok.col)
        self.expect("OP", ")")
        self._suspend_range = suspended
        return ast.Call(name_tok.value, args, named, line=name_tok.line)

    # ------------------------------------------------------------------
    # index specs
    # ------------------------------------------------------------------

    def parse_index_specs(self) -> tuple[ast.IndexSpec, ast.IndexSpec]:
        """Parse ``[rows]`` or ``[rows, cols]`` after the opening bracket.

        A single spec (no comma) means row selection on a column vector /
        matrix, matching DML's ``X[i]`` ≡ ``X[i, ]`` for vectors.
        """
        self.expect("OP", "[")
        rows = self.parse_one_spec(terminators=(",", "]"))
        if self.check_op(","):
            self.advance()
            cols = self.parse_one_spec(terminators=("]",))
        else:
            cols = ast.IndexSpec(all=True)
        self.expect("OP", "]")
        return rows, cols

    def parse_one_spec(self, terminators: tuple[str, ...]) -> ast.IndexSpec:
        if self.check_op(*terminators):
            return ast.IndexSpec(all=True)
        self._suspend_range += 1
        try:
            lo = self.parse_expr()
            if self.check_op(":"):
                self.advance()
                hi = self.parse_expr()
                return ast.IndexSpec(lo=lo, hi=hi)
        finally:
            self._suspend_range -= 1
        return ast.IndexSpec(index=lo)
