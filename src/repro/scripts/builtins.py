"""DML sources of the builtin script function library.

The functions mirror (in simplified form) the SystemDS builtins the paper
evaluates: linear regression with closed-form/conjugate-gradient dispatch
(Example 1), grid search with dynamic ``eval`` dispatch, L2-regularized
SVM, multi-class SVM and logistic regression, PCA (Fig. 5), naive Bayes,
k-fold cross-validated lm, stepwise linear regression, and a two-hidden-
layer autoencoder with batch-wise preprocessing (Section 5.5).
"""

SCALE_AND_SHIFT = """
scaleAndShift = function(X) return (Y) {
  cm = colMeans(X);
  csd = colSds(X);
  csd = replace(target=csd, pattern=0, replacement=1);
  Y = (X - cm) / csd;
}
"""

LM = """
lmDS = function(X, y, icpt = 0, reg = 0.0000001, verbose = FALSE)
    return (B) {
  if (icpt == 2)
    X = scaleAndShift(X);
  if (icpt > 0)
    X = cbind(X, matrix(1, nrow(X), 1));
  A = t(X) %*% X + diag(matrix(reg, ncol(X), 1));
  b = t(X) %*% y;
  B = solve(A, b);
}

lmCG = function(X, y, icpt = 0, reg = 0.0000001, tol = 0.0000001,
                maxi = 0, verbose = FALSE) return (B) {
  if (icpt == 2)
    X = scaleAndShift(X);
  if (icpt > 0)
    X = cbind(X, matrix(1, nrow(X), 1));
  n = ncol(X);
  B = matrix(0, n, 1);
  r = -1 * (t(X) %*% y);
  p = -1 * r;
  norm_r2 = sum(r * r);
  norm_r2_tgt = norm_r2 * tol * tol;
  mi = maxi;
  if (mi == 0)
    mi = n;
  i = 0;
  while (i < mi & norm_r2 > norm_r2_tgt) {
    q = t(X) %*% (X %*% p) + reg * p;
    alpha = norm_r2 / sum(p * q);
    B = B + alpha * p;
    r = r + alpha * q;
    old_norm_r2 = norm_r2;
    norm_r2 = sum(r * r);
    p = -1 * r + (norm_r2 / old_norm_r2) * p;
    i = i + 1;
  }
}

lm = function(X, y, icpt = 0, reg = 0.0000001, tol = 0.0000001,
              maxi = 0, verbose = FALSE) return (B) {
  if (ncol(X) <= 1024)
    B = lmDS(X, y, icpt, reg, verbose);
  else
    B = lmCG(X, y, icpt, reg, tol, maxi, verbose);
}

lmPredict = function(X, B) return (yhat) {
  if (nrow(B) > ncol(X))
    X = cbind(X, matrix(1, nrow(X), 1));
  yhat = X %*% B;
}

l2norm = function(X, y, B) return (loss) {
  if (nrow(B) > ncol(X))
    X = cbind(X, matrix(1, nrow(X), 1));
  e = y - X %*% B;
  loss = sum(e * e);
}

r2score = function(y, yhat) return (r2) {
  ss_res = sum((y - yhat) ^ 2);
  mu = mean(y);
  ss_tot = sum((y - mu) ^ 2);
  r2 = 1 - ss_res / max(ss_tot, 0.000000001);
}
"""

GRID_SEARCH = """
gridSearch = function(X, y, train, score, params, paramValues, numB,
                      par = TRUE) return (B, opt) {
  numParams = length(params);
  numConfigs = 1;
  for (j in 1:numParams)
    numConfigs = numConfigs * nrow(as.matrix(paramValues[j]));

  # materialize all hyper-parameter tuples (paper Section 2.1)
  HP = matrix(0, numConfigs, numParams);
  blockSize = numConfigs;
  for (j in 1:numParams) {
    vals = as.matrix(paramValues[j]);
    nvals = nrow(vals);
    blockSize = blockSize / nvals;
    for (k in 1:numConfigs) {
      idx = as.integer(floor((k - 1) / blockSize)) %% nvals + 1;
      HP[k, j] = as.scalar(vals[idx, 1]);
    }
  }

  rB = matrix(0, numConfigs, numB);
  rL = matrix(0, numConfigs, 1);
  if (par) {
    parfor (k in 1:numConfigs) {
      largs = list(X = X, y = y);
      for (j in 1:numParams)
        largs = lappend(largs, params[j], as.scalar(HP[k, j]));
      beta = eval(train, largs);
      nb = nrow(beta);
      rB[k, 1:nb] = t(beta);
      rL[k, 1] = eval(score, list(X = X, y = y, B = beta));
    }
  } else {
    for (k in 1:numConfigs) {
      largs = list(X = X, y = y);
      for (j in 1:numParams)
        largs = lappend(largs, params[j], as.scalar(HP[k, j]));
      beta = eval(train, largs);
      nb = nrow(beta);
      rB[k, 1:nb] = t(beta);
      rL[k, 1] = eval(score, list(X = X, y = y, B = beta));
    }
  }

  ordIdx = order(target = rL, by = 1, decreasing = FALSE,
                 index.return = TRUE);
  opti = as.scalar(ordIdx[1, 1]);
  opt = as.scalar(rL[opti, 1]);
  B = t(rB[opti, ]);
}
"""

L2SVM = """
l2svm = function(X, y, icpt = 0, reg = 1.0, tol = 0.001, maxIter = 20)
    return (w) {
  Y = y;
  if (icpt > 0)
    X = cbind(X, matrix(1, nrow(X), 1));
  D = ncol(X);
  w = matrix(0, D, 1);
  g_old = t(X) %*% Y;
  s = g_old;
  Xw = matrix(0, nrow(X), 1);
  iter = 0;
  continue = 1;
  while (continue == 1 & iter < maxIter) {
    step_sz = 0;
    Xd = X %*% s;
    wd = reg * sum(w * s);
    dd = reg * sum(s * s);
    inner = 1;
    while (inner == 1) {
      tmp_Xw = Xw + step_sz * Xd;
      out = 1 - Y * tmp_Xw;
      sv = out > 0;
      out = out * sv;
      g = wd + step_sz * dd - sum(out * Y * Xd);
      h = dd + sum(Xd * sv * Xd);
      step_sz = step_sz - g / h;
      inner = ifelse(g * g / h > 0.0000000001, 1, 0);
    }
    w = w + step_sz * s;
    Xw = Xw + step_sz * Xd;
    out = 1 - Y * Xw;
    sv = out > 0;
    out = sv * out;
    obj = 0.5 * sum(out * out) + reg / 2 * sum(w * w);
    g_new = t(X) %*% (out * Y) - reg * w;
    tmp = sum(s * g_old);
    if (step_sz * tmp < tol * obj)
      continue = 0;
    be = sum(g_new * g_new) / max(sum(g_old * g_old), 0.0000000001);
    s = be * s + g_new;
    g_old = g_new;
    iter = iter + 1;
  }
}

msvm = function(X, y, icpt = 0, reg = 1.0, tol = 0.001, maxIter = 20)
    return (W) {
  Y = y;
  numClasses = as.integer(max(Y));
  extra = ifelse(icpt > 0, 1, 0);
  W = matrix(0, ncol(X) + extra, numClasses);
  parfor (class in 1:numClasses) {
    Yc = 2 * (Y == class) - 1;
    wc = l2svm(X, Yc, icpt, reg, tol, maxIter);
    W[, class] = wc;
  }
}
"""

MULTILOGREG = """
multiLogReg = function(X, y, icpt = 0, reg = 0.000001, tol = 0.000001,
                       maxi = 20) return (B) {
  Y = y;
  if (icpt > 0)
    X = cbind(X, matrix(1, nrow(X), 1));
  N = nrow(X);
  D = ncol(X);
  K = as.integer(max(Y));
  Yhot = table(seq(1, N), Y);
  B = matrix(0, D, K);
  step = 1.0;
  i = 0;
  while (i < maxi) {
    scores = X %*% B;
    escores = exp(scores - rowMaxs(scores));
    P = escores / rowSums(escores);
    G = t(X) %*% (P - Yhot) / N + reg * B;
    B = B - step * G;
    i = i + 1;
  }
}
"""

PCA = """
pca = function(A, K = 2) return (R, evects) {
  N = nrow(A);
  D = ncol(A);
  A = scaleAndShift(A);
  mu = colSums(A) / N;
  C = (t(A) %*% A) / (N - 1) - (N / (N - 1)) * (t(mu) %*% mu);
  [evals, evects0] = eigen(C);
  dscIdx = order(target = evals, by = 1, decreasing = TRUE,
                 index.return = TRUE);
  evects = evects0 %*% table(dscIdx, seq(1, D));
  R = A %*% evects[, 1:K];
}
"""

NAIVE_BAYES = """
naiveBayes = function(X, y, laplace = 1.0) return (prior, condProb) {
  Y = y;
  N = nrow(X);
  ind = table(seq(1, N), Y);
  classCounts = t(colSums(ind));
  featureSums = t(ind) %*% X;
  classSums = rowSums(featureSums);
  condProb = (featureSums + laplace) / (classSums + laplace * ncol(X));
  prior = classCounts / N;
}

naiveBayesPredict = function(X, prior, condProb) return (Yhat) {
  logProbs = X %*% t(log(condProb)) + t(log(prior));
  Yhat = rowIndexMax(logProbs);
}
"""

CVLM = """
cvlm = function(X, y, k = 4, icpt = 0, reg = 0.0000001) return (avgLoss) {
  N = nrow(X);
  D = ncol(X);
  foldSize = as.integer(floor(N / k));
  avgLoss = 0;
  for (i in 1:k) {
    A = matrix(0, D, D);
    b = matrix(0, D, 1);
    for (j in 1:k) {
      if (j != i) {
        jlo = (j - 1) * foldSize + 1;
        jhi = j * foldSize;
        Xj = X[jlo:jhi, ];
        yj = y[jlo:jhi, ];
        A = A + t(Xj) %*% Xj;
        b = b + t(Xj) %*% yj;
      }
    }
    A = A + diag(matrix(reg, D, 1));
    beta = solve(A, b);
    lo = (i - 1) * foldSize + 1;
    hi = i * foldSize;
    loss = l2norm(X[lo:hi, ], y[lo:hi, ], beta);
    avgLoss = avgLoss + loss / k;
  }
}

cvlmPar = function(X, y, k = 4, icpt = 0, reg = 0.0000001)
    return (avgLoss) {
  N = nrow(X);
  D = ncol(X);
  foldSize = as.integer(floor(N / k));
  losses = matrix(0, k, 1);
  parfor (i in 1:k) {
    A = matrix(0, D, D);
    b = matrix(0, D, 1);
    for (j in 1:k) {
      if (j != i) {
        jlo = (j - 1) * foldSize + 1;
        jhi = j * foldSize;
        Xj = X[jlo:jhi, ];
        yj = y[jlo:jhi, ];
        A = A + t(Xj) %*% Xj;
        b = b + t(Xj) %*% yj;
      }
    }
    A = A + diag(matrix(reg, D, 1));
    beta = solve(A, b);
    lo = (i - 1) * foldSize + 1;
    hi = i * foldSize;
    losses[i, 1] = l2norm(X[lo:hi, ], y[lo:hi, ], beta);
  }
  avgLoss = mean(losses);
}
"""

STEPLM = """
stepLm = function(X, y, maxK = 5, reg = 0.0000001) return (S) {
  N = nrow(X);
  D = ncol(X);
  selected = matrix(0, 1, D);
  S = matrix(0, maxK, 1);
  Xs = matrix(1, N, 1);
  for (k in 1:maxK) {
    As = t(Xs) %*% Xs;
    bestLoss = 999999999;
    bestC = 0;
    for (c in 1:D) {
      if (as.scalar(selected[1, c]) == 0) {
        Xc = cbind(Xs, X[, c]);
        A = t(Xc) %*% Xc + diag(matrix(reg, ncol(Xc), 1));
        b = t(Xc) %*% y;
        beta = solve(A, b);
        e = y - Xc %*% beta;
        loss = sum(e * e);
        if (loss < bestLoss) {
          bestLoss = loss;
          bestC = c;
        }
      }
    }
    Xs = cbind(Xs, X[, bestC]);
    S[k, 1] = bestC;
    selected[1, bestC] = 1;
  }
}
"""

AUTOENCODER = """
autoencoder = function(X, H1 = 500, H2 = 2, epochs = 1, batchSize = 256,
                       lr = 0.01, seedW = 42)
    return (W1, W2, W3, W4) {
  N = nrow(X);
  D = ncol(X);
  W1 = (rand(rows = D, cols = H1, seed = seedW) - 0.5) / sqrt(D);
  W2 = (rand(rows = H1, cols = H2, seed = seedW + 1) - 0.5) / sqrt(H1);
  W3 = (rand(rows = H2, cols = H1, seed = seedW + 2) - 0.5) / sqrt(H2);
  W4 = (rand(rows = H1, cols = D, seed = seedW + 3) - 0.5) / sqrt(H1);
  iters = as.integer(floor(N / batchSize));
  for (ep in 1:epochs) {
    for (i in 1:iters) {
      beg = (i - 1) * batchSize + 1;
      end = i * batchSize;
      Xb = scaleAndShift(X[beg:end, ]);  # batch-wise preprocessing map
      H1a = sigmoid(Xb %*% W1);
      H2a = sigmoid(H1a %*% W2);
      H3a = sigmoid(H2a %*% W3);
      Yhat = H3a %*% W4;
      E = Yhat - Xb;
      dW4 = t(H3a) %*% E;
      dH3 = (E %*% t(W4)) * H3a * (1 - H3a);
      dW3 = t(H2a) %*% dH3;
      dH2 = (dH3 %*% t(W3)) * H2a * (1 - H2a);
      dW2 = t(H1a) %*% dH2;
      dH1 = (dH2 %*% t(W2)) * H1a * (1 - H1a);
      dW1 = t(Xb) %*% dH1;
      W1 = W1 - lr * dW1;
      W2 = W2 - lr * dW2;
      W3 = W3 - lr * dW3;
      W4 = W4 - lr * dW4;
    }
  }
}
"""

KMEANS = """
kmeans = function(X, k = 2, maxIter = 20, seed = 42)
    return (C, labels) {
  N = nrow(X);
  D = ncol(X);
  # seeded initialization: k random rows as initial centroids
  init = sample(N, k, FALSE, seed);
  C = X[init, ];
  labels = matrix(0, N, 1);
  iter = 0;
  converged = 0;
  while (converged == 0 & iter < maxIter) {
    # squared distances via ||x||^2 - 2 x.c + ||c||^2
    distances = rowSums(X * X) %*% matrix(1, 1, k)
              - 2 * (X %*% t(C))
              + matrix(1, N, 1) %*% t(rowSums(C * C));
    newLabels = rowIndexMax(-1 * distances);
    assign = table(seq(1, N), newLabels);
    # an emptied cluster shrinks the table: pad back to k columns
    if (ncol(assign) < k)
      assign = cbind(assign, matrix(0, N, k - ncol(assign)));
    counts = t(colSums(assign));
    counts = replace(target = counts, pattern = 0, replacement = 1);
    newC = (t(assign) %*% X) / counts;
    delta = sum(newLabels != labels);
    labels = newLabels;
    C = newC;
    if (delta == 0)
      converged = 1;
    iter = iter + 1;
  }
}

kmeansPredict = function(X, C) return (labels) {
  k = nrow(C);
  N = nrow(X);
  distances = rowSums(X * X) %*% matrix(1, 1, k)
            - 2 * (X %*% t(C))
            + matrix(1, N, 1) %*% t(rowSums(C * C));
  labels = rowIndexMax(-1 * distances);
}
"""

PNMF = """
pnmf = function(X, rank = 10, maxIter = 20, seed = 42)
    return (W, H) {
  eps = 0.000000001;
  W = rand(rows = nrow(X), cols = rank, min = 0.01, max = 1,
           seed = seed);
  H = rand(rows = rank, cols = ncol(X), min = 0.01, max = 1,
           seed = seed + 1);
  for (i in 1:maxIter) {
    H = H * (t(W) %*% X) / (t(W) %*% W %*% H + eps);
    W = W * (X %*% t(H)) / (W %*% (H %*% t(H)) + eps);
  }
}

pnmfLoss = function(X, W, H) return (loss) {
  E = X - W %*% H;
  loss = sum(E * E);
}
"""

PREDICTORS = """
msvmPredict = function(X, W) return (Yhat) {
  if (nrow(W) > ncol(X))
    X = cbind(X, matrix(1, nrow(X), 1));
  Yhat = rowIndexMax(X %*% W);
}

multiLogRegPredict = function(X, B) return (Yhat) {
  if (nrow(B) > ncol(X))
    X = cbind(X, matrix(1, nrow(X), 1));
  Yhat = rowIndexMax(X %*% B);
}

accuracy = function(y, yhat) return (acc) {
  acc = mean(y == yhat);
}

confusionMatrix = function(y, yhat) return (M) {
  M = table(y, yhat);
}
"""

SOURCES = [
    SCALE_AND_SHIFT,
    LM,
    GRID_SEARCH,
    L2SVM,
    MULTILOGREG,
    PCA,
    NAIVE_BAYES,
    CVLM,
    STEPLM,
    AUTOENCODER,
    KMEANS,
    PNMF,
    PREDICTORS,
]
