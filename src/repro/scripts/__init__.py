"""Script-based builtin function library (paper Section 2.1).

Like SystemDS, high-level primitives (``lm``, ``gridSearch``, ``pca``, ...)
are themselves scripts written in the DML-like language and compiled on
demand.  This is what creates the hierarchical composition — and hence the
multi-level redundancy — that LIMA exploits.

:func:`lookup_builtin_function` returns the parsed ``FuncDef`` for a name,
parsing each script source at most once per process.

Concurrency: the registry is scanned once behind a lock, then *published*
by swapping in a fully built dict and setting the scanned flag last.
After publication every lookup is a plain (GIL-atomic) dict read with no
lock at all, so concurrent service sessions resolving builtins never
serialize on a global lock — the previous design took a module lock on
every single lookup.
"""

from __future__ import annotations

import threading

from repro.lang import ast, parse
from repro.scripts import builtins as _builtins

_PARSED: dict[str, ast.FuncDef] = {}
#: guards only the one-time scan, never steady-state lookups
_SCAN_LOCK = threading.Lock()
_SOURCES_SCANNED = False


def _ensure_scanned() -> None:
    global _PARSED, _SOURCES_SCANNED
    if _SOURCES_SCANNED:  # lock-free fast path after publication
        return
    with _SCAN_LOCK:
        if _SOURCES_SCANNED:
            return
        parsed: dict[str, ast.FuncDef] = {}
        for source in _builtins.SOURCES:
            script = parse(source)
            for name, fdef in script.functions.items():
                parsed.setdefault(name, fdef)
        # publish the complete dict before the flag: a racing reader that
        # sees _SOURCES_SCANNED=True is guaranteed the full registry
        _PARSED = parsed
        _SOURCES_SCANNED = True


def lookup_builtin_function(name: str) -> ast.FuncDef | None:
    """Parsed AST of a builtin script function, or None if unknown."""
    _ensure_scanned()
    return _PARSED.get(name)


def builtin_function_names() -> list[str]:
    _ensure_scanned()
    return sorted(_PARSED)


def builtin_source(name: str) -> str | None:
    """Raw script source containing the named builtin (for docs/tests)."""
    for source in _builtins.SOURCES:
        if f"{name} = function" in source:
            return source
    return None
