"""Script-based builtin function library (paper Section 2.1).

Like SystemDS, high-level primitives (``lm``, ``gridSearch``, ``pca``, ...)
are themselves scripts written in the DML-like language and compiled on
demand.  This is what creates the hierarchical composition — and hence the
multi-level redundancy — that LIMA exploits.

:func:`lookup_builtin_function` returns the parsed ``FuncDef`` for a name,
parsing each script source at most once per process.
"""

from __future__ import annotations

import threading

from repro.lang import ast, parse
from repro.scripts import builtins as _builtins

_PARSED: dict[str, ast.FuncDef] = {}
_LOCK = threading.Lock()
_SOURCES_SCANNED = False


def _scan_sources() -> None:
    global _SOURCES_SCANNED
    if _SOURCES_SCANNED:
        return
    for source in _builtins.SOURCES:
        script = parse(source)
        for name, fdef in script.functions.items():
            _PARSED.setdefault(name, fdef)
    _SOURCES_SCANNED = True


def lookup_builtin_function(name: str) -> ast.FuncDef | None:
    """Parsed AST of a builtin script function, or None if unknown."""
    with _LOCK:
        _scan_sources()
        return _PARSED.get(name)


def builtin_function_names() -> list[str]:
    with _LOCK:
        _scan_sources()
        return sorted(_PARSED)


def builtin_source(name: str) -> str | None:
    """Raw script source containing the named builtin (for docs/tests)."""
    for source in _builtins.SOURCES:
        if f"{name} = function" in source:
            return source
    return None
