"""Exception hierarchy for the LIMA reproduction.

All errors raised by the language frontend, the compiler, the runtime, and
the lineage/reuse subsystems derive from :class:`LimaError` so callers can
catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class LimaError(Exception):
    """Base class for all errors raised by this package."""


class LimaSyntaxError(LimaError):
    """A script could not be tokenized or parsed.

    Carries the 1-based source line and column of the offending token.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        if line:
            message = f"line {line}:{col}: {message}"
        super().__init__(message)


class LimaCompileError(LimaError):
    """The AST was syntactically valid but could not be compiled."""


class LimaRuntimeError(LimaError):
    """An instruction failed during execution."""


class LimaValueError(LimaError):
    """A runtime value had an unexpected type or shape."""


class LineageError(LimaError):
    """Lineage tracing, serialization, or reconstruction failed."""


class ReuseError(LimaError):
    """The lineage cache or a reuse rewrite failed."""


class ReuseVerificationError(ReuseError):
    """The reuse-correctness oracle found a reused value that disagrees
    with recomputing it from its lineage trace.

    Carries the reuse ``kind`` (``full``/``partial``/``multilevel``), the
    cache-key lineage ``item``, both values (``cached``, ``recomputed``)
    and the maximum absolute difference between them.
    """

    def __init__(self, kind: str, item, cached, recomputed,
                 max_abs_diff: float):
        self.kind = kind
        self.item = item
        self.cached = cached
        self.recomputed = recomputed
        self.max_abs_diff = max_abs_diff
        super().__init__(
            f"{kind} reuse of {item!r} diverges from its lineage trace "
            f"(max abs diff {max_abs_diff:.3e})")


class SpillError(LimaError):
    """A spill file could not be written or restored."""


class SpillCorruptionError(SpillError):
    """A spill file failed verification: bad magic, short read, or a
    CRC32 checksum mismatch.  Never retried (the bytes on disk are
    wrong); recovery falls through to lineage-based recomputation."""


class WorkerCrashError(LimaRuntimeError):
    """A parfor worker crashed mid-iteration (fault injection's ``crash``
    kind); the iteration is retried on a fresh worker context."""


class ParforError(LimaRuntimeError):
    """One or more parfor iterations failed after per-iteration retries
    and the sequential fallback.

    Carries the 0-based indices of the failing iterations and their final
    causes, so callers can report exactly what was lost.
    """

    def __init__(self, message: str, iterations=(), causes=()):
        super().__init__(message)
        self.iterations = list(iterations)
        self.causes = list(causes)


class SessionAborted(LimaError):
    """A session was terminated before its script finished.

    Raised cooperatively at instruction boundaries (and inside parfor
    workers, spill-retry backoffs, and placeholder waits).  Carries the
    ``session_id``, wall-clock ``elapsed`` seconds, the number of
    ``instructions`` retired, and — when the abort happened inside a
    service executor — the ``partial_lineage`` traces (variable name ->
    :class:`~repro.lineage.item.LineageItem`) of everything the session
    had defined so far, so partial work remains replayable.
    """

    def __init__(self, message: str, session_id=None, elapsed: float = 0.0,
                 instructions: int = 0, partial_lineage=None):
        super().__init__(message)
        self.session_id = session_id
        self.elapsed = elapsed
        self.instructions = instructions
        self.partial_lineage = dict(partial_lineage or {})


class DeadlineExceeded(SessionAborted):
    """The session's wall-clock deadline (or instruction-count watchdog)
    expired; other sessions sharing the cache are unaffected."""


class SessionCancelled(SessionAborted):
    """The session was cancelled by the client (or service shutdown)."""


class ServiceOverloadedError(LimaError):
    """Admission control rejected a request: the bounded queue was full
    under backpressure, or an injected ``service.admit`` fault fired."""


class ServiceClosedError(LimaError):
    """The service is shutting down (or closed) and no longer accepts
    new sessions."""


class ResilienceWarning(RuntimeWarning):
    """Execution continued through a recovered fault or degradation."""
