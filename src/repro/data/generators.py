"""Synthetic dataset generators, including real-dataset surrogates.

The paper evaluates on synthetic matrices plus two UCI datasets (Table 3):

* **APS** (Scania trucks air-pressure system): 60K x 170 numeric features
  with many missing values and a heavily skewed binary label; pre-processed
  by mean imputation and minority-class oversampling (70K x 170 after).
* **KDD98** (donation return regression): 95,412 x 469 raw features,
  recoded + binned + one-hot encoded into 95,412 x 7,909 sparse features.

Neither dataset can be shipped here, so :func:`aps_like` and
:func:`kdd98_like` generate surrogates with the same (scaled) shapes,
sparsity, skew, and a noisy low-rank signal.  Section 5.4's finding is
that lineage-based reuse is largely invariant to data skew; the surrogates
let the benchmarks test the same invariance (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Dataset:
    """A generated dataset with its provenance-style description."""

    name: str
    X: np.ndarray
    y: np.ndarray
    description: str

    @property
    def shape(self) -> tuple[int, int]:
        return self.X.shape


def regression(n_rows: int, n_cols: int, noise: float = 0.1,
               seed: int = 0) -> Dataset:
    """Dense regression data: ``y = X w + noise`` with standard-normal X."""
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n_rows, n_cols))
    w = rng.standard_normal((n_cols, 1))
    y = X @ w + noise * rng.standard_normal((n_rows, 1))
    return Dataset("regression", X, y,
                   f"dense normal X ({n_rows}x{n_cols}), linear y")


def classification(n_rows: int, n_cols: int, n_classes: int = 2,
                   separation: float = 1.0, seed: int = 0) -> Dataset:
    """Gaussian-blob classification data with labels ``1..n_classes``."""
    rng = np.random.default_rng(seed)
    centers = separation * rng.standard_normal((n_classes, n_cols))
    labels = rng.integers(0, n_classes, size=n_rows)
    X = centers[labels] + rng.standard_normal((n_rows, n_cols))
    y = (labels + 1).astype(np.float64).reshape(-1, 1)
    return Dataset("classification", X, y,
                   f"{n_classes}-class gaussian blobs ({n_rows}x{n_cols})")


def binary_pm1(n_rows: int, n_cols: int, seed: int = 0) -> Dataset:
    """Binary classification with ±1 labels (for l2svm)."""
    data = classification(n_rows, n_cols, 2, seed=seed)
    y = 2.0 * (data.y - 1.0) - 1.0  # {1,2} -> {-1,+1}
    return Dataset("binary_pm1", data.X, y,
                   f"binary +/-1 labels ({n_rows}x{n_cols})")


def aps_like(n_rows: int = 6000, n_cols: int = 170, missing_rate: float = 0.2,
             minority_frac: float = 0.02, seed: int = 0) -> Dataset:
    """APS surrogate: skewed numeric sensor data with missing values.

    Matches the real dataset's relevant characteristics at 1/10 scale:
    heavy-tailed nonnegative readings, ``missing_rate`` NaNs, and a
    ``minority_frac`` positive class correlated with a feature subset.
    Labels are {1, 2}; apply :func:`impute_mean` and
    :func:`oversample_minority` to mirror the paper's pre-processing.
    """
    rng = np.random.default_rng(seed)
    # heavy-tailed sensor histogram counts: lognormal base signal
    X = rng.lognormal(mean=0.0, sigma=1.5, size=(n_rows, n_cols))
    w = rng.standard_normal((n_cols, 1)) * (rng.random((n_cols, 1)) < 0.1)
    score = np.log1p(X) @ w
    threshold = np.quantile(score, 1.0 - minority_frac)
    y = (score >= threshold).astype(np.float64) + 1.0
    mask = rng.random((n_rows, n_cols)) < missing_rate
    X = X.copy()
    X[mask] = np.nan
    return Dataset("aps_like", X, y,
                   f"APS surrogate ({n_rows}x{n_cols}, "
                   f"{missing_rate:.0%} missing, "
                   f"{minority_frac:.0%} minority class)")


def kdd98_like(n_rows: int = 9541, n_raw: int = 47, bins: int = 10,
               categories: int = 8, seed: int = 0) -> Dataset:
    """KDD98 surrogate: one-hot encoded binned/recoded features.

    The real pipeline recodes categorical features, bins continuous ones
    into 10 equi-width bins, and one-hot encodes both — turning 469 raw
    columns into 7,909 sparse indicator columns.  At 1/10 scale, ``n_raw``
    raw features expand into roughly ``n_raw/2*(bins+categories)`` sparse
    indicator columns, preserving the extreme sparsity and column count
    blow-up.  The target is a skewed nonnegative donation amount.
    """
    rng = np.random.default_rng(seed)
    n_cont = n_raw // 2
    n_cat = n_raw - n_cont
    blocks = []
    signal = np.zeros((n_rows, 1))
    for _ in range(n_cont):
        col = rng.standard_normal(n_rows)
        edges = np.linspace(col.min(), col.max(), bins + 1)
        idx = np.clip(np.digitize(col, edges[1:-1]), 0, bins - 1)
        onehot = np.zeros((n_rows, bins))
        onehot[np.arange(n_rows), idx] = 1.0
        blocks.append(onehot)
        signal += 0.05 * col.reshape(-1, 1)
    for _ in range(n_cat):
        idx = rng.integers(0, categories, size=n_rows)
        onehot = np.zeros((n_rows, categories))
        onehot[np.arange(n_rows), idx] = 1.0
        blocks.append(onehot)
        signal += 0.02 * (idx == 0).astype(np.float64).reshape(-1, 1)
    X = np.hstack(blocks)
    # skewed donation target: mostly zero, occasionally positive
    base = np.exp(signal + 0.3 * rng.standard_normal((n_rows, 1)))
    donate = rng.random((n_rows, 1)) < 0.25
    y = np.where(donate, base, 0.0)
    return Dataset("kdd98_like", X, y,
                   f"KDD98 surrogate ({n_rows}x{X.shape[1]} one-hot, "
                   f"sparsity {(X != 0).mean():.3f})")


# ---------------------------------------------------------------------------
# pre-processing helpers mirroring the paper's Section 5.4
# ---------------------------------------------------------------------------

def impute_mean(X: np.ndarray) -> np.ndarray:
    """Replace NaNs by the column mean (APS pre-processing)."""
    out = X.copy()
    means = np.nanmean(out, axis=0)
    means = np.where(np.isnan(means), 0.0, means)
    idx = np.where(np.isnan(out))
    out[idx] = means[idx[1]]
    return out


def oversample_minority(X: np.ndarray, y: np.ndarray, target_rows: int,
                        seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Duplicate minority-class rows until ``target_rows`` total rows."""
    rng = np.random.default_rng(seed)
    labels, counts = np.unique(y, return_counts=True)
    minority = labels[np.argmin(counts)]
    minority_idx = np.where(y.ravel() == minority)[0]
    extra = target_rows - X.shape[0]
    if extra <= 0 or minority_idx.size == 0:
        return X, y
    picks = rng.choice(minority_idx, size=extra, replace=True)
    return (np.vstack([X, X[picks]]),
            np.vstack([y, y[picks]]))
