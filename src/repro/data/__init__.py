"""Runtime data values and dataset utilities."""

from repro.data.values import (
    Value,
    FrameValue,
    MatrixValue,
    ScalarValue,
    StringValue,
    ListValue,
    wrap,
)

__all__ = [
    "Value",
    "FrameValue",
    "MatrixValue",
    "ScalarValue",
    "StringValue",
    "ListValue",
    "wrap",
]
