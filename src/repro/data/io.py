"""Dataset file I/O helpers.

The runtime's ``read``/``write`` instructions handle CSV and ``.npy``
matrices; these helpers cover the session-level workflow: persisting
generated datasets, loading them back as script inputs, and writing a
matrix together with its lineage log (the ``write(X, 'f')`` →
``f.lineage`` convention of Section 3.1).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.data.generators import Dataset
from repro.errors import LimaError


def save_matrix(array: np.ndarray, path: str) -> None:
    """Save a matrix as ``.npy`` or ``.csv`` (by extension)."""
    array = np.atleast_2d(np.asarray(array, dtype=np.float64))
    if path.endswith(".npy"):
        np.save(path, array)
    elif path.endswith(".csv"):
        np.savetxt(path, array, delimiter=",")
    else:
        raise LimaError(f"unsupported matrix format: {path!r}")


def load_matrix(path: str) -> np.ndarray:
    """Load a matrix saved by :func:`save_matrix` (or the runtime)."""
    if path.endswith(".npy"):
        return np.atleast_2d(np.load(path))
    if path.endswith(".csv"):
        return np.loadtxt(path, delimiter=",", ndmin=2)
    raise LimaError(f"unsupported matrix format: {path!r}")


def save_dataset(dataset: Dataset, directory: str) -> None:
    """Persist a generated dataset (X, y, metadata) into a directory."""
    os.makedirs(directory, exist_ok=True)
    np.save(os.path.join(directory, "X.npy"), dataset.X)
    np.save(os.path.join(directory, "y.npy"), dataset.y)
    meta = {"name": dataset.name, "description": dataset.description,
            "shape": list(dataset.X.shape)}
    with open(os.path.join(directory, "meta.json"), "w",
              encoding="utf-8") as fh:
        json.dump(meta, fh, indent=2)


def load_dataset(directory: str) -> Dataset:
    """Load a dataset persisted by :func:`save_dataset`."""
    meta_path = os.path.join(directory, "meta.json")
    try:
        with open(meta_path, encoding="utf-8") as fh:
            meta = json.load(fh)
    except FileNotFoundError as exc:
        raise LimaError(f"{directory!r} is not a dataset directory") \
            from exc
    return Dataset(
        name=meta["name"],
        X=np.load(os.path.join(directory, "X.npy")),
        y=np.load(os.path.join(directory, "y.npy")),
        description=meta["description"],
    )


def load_lineage_log(path: str) -> str:
    """Read the lineage log written next to a matrix by ``write()``."""
    lineage_path = path if path.endswith(".lineage") else path + ".lineage"
    with open(lineage_path, encoding="utf-8") as fh:
        return fh.read()
