"""Runtime value wrappers held in the symbol table.

The runtime distinguishes four value kinds, mirroring SystemDS' buffer-pool
managed objects (Fig. 2 of the paper):

* :class:`MatrixValue` — a dense 2-d ``float64`` NumPy array,
* :class:`ScalarValue` — a Python ``float``/``int``/``bool`` scalar,
* :class:`StringValue` — a string scalar (for ``print``/``toString``),
* :class:`ListValue`  — an ordered, optionally named, list of values
  (used for hyper-parameter lists and multi-return plumbing).

Matrices are treated as immutable by convention: instructions always
allocate fresh outputs, which is what makes caching their outputs safe.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import LimaValueError


class Value:
    """Abstract base class of runtime values."""

    #: short type tag used in lineage logs and error messages
    kind: str = "value"

    def nbytes(self) -> int:
        """Approximate in-memory size in bytes (for cache accounting)."""
        raise NotImplementedError


class MatrixValue(Value):
    """A dense 2-d float64 matrix.

    Any array-like input is coerced to a C-contiguous ``float64`` matrix;
    1-d inputs become column vectors, matching DML semantics where every
    matrix is 2-dimensional.
    """

    kind = "matrix"
    __slots__ = ("data",)

    def __init__(self, data):
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim == 0:
            arr = arr.reshape(1, 1)
        elif arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        elif arr.ndim != 2:
            raise LimaValueError(
                f"matrices must be 2-dimensional, got shape {arr.shape}")
        self.data = np.ascontiguousarray(arr)

    @property
    def nrow(self) -> int:
        return self.data.shape[0]

    @property
    def ncol(self) -> int:
        return self.data.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape

    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def __repr__(self) -> str:
        return f"MatrixValue({self.nrow}x{self.ncol})"


class ScalarValue(Value):
    """A numeric or boolean scalar."""

    kind = "scalar"
    __slots__ = ("value",)

    def __init__(self, value):
        if isinstance(value, (bool, np.bool_)):
            self.value = bool(value)
        elif isinstance(value, (int, np.integer)):
            self.value = int(value)
        elif isinstance(value, (float, np.floating)):
            self.value = float(value)
        else:
            raise LimaValueError(f"not a scalar: {value!r}")

    def nbytes(self) -> int:
        return 32

    def as_float(self) -> float:
        return float(self.value)

    def as_int(self) -> int:
        return int(self.value)

    def as_bool(self) -> bool:
        return bool(self.value)

    def __repr__(self) -> str:
        return f"ScalarValue({self.value!r})"


class StringValue(Value):
    """A string scalar."""

    kind = "string"
    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = str(value)

    def nbytes(self) -> int:
        return 48 + len(self.value)

    def __repr__(self) -> str:
        return f"StringValue({self.value!r})"


class FrameValue(Value):
    """A 2-d frame of string cells (categorical/raw data).

    Frames carry pre-encoding data (categories, raw CSV fields) through
    the pipeline; the transform-encode builtins (``recodeEncode``,
    ``binEncode``, ``oneHotEncode``) turn them into matrices.  Like
    matrices, frames are immutable by convention and cacheable.
    """

    kind = "frame"
    __slots__ = ("data",)

    def __init__(self, data):
        arr = np.asarray(data, dtype=object)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise LimaValueError(
                f"frames must be 2-dimensional, got shape {arr.shape}")
        self.data = np.vectorize(str, otypes=[object])(arr) \
            if arr.size else arr

    @property
    def nrow(self) -> int:
        return self.data.shape[0]

    @property
    def ncol(self) -> int:
        return self.data.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape

    def nbytes(self) -> int:
        # object arrays: pointer + average string payload estimate
        payload = sum(len(self.data[i, j]) for i in
                      range(min(self.nrow, 50))
                      for j in range(self.ncol))
        rows = max(min(self.nrow, 50), 1)
        return int(self.data.size * (8 + payload / (rows * max(self.ncol, 1))))

    def __repr__(self) -> str:
        return f"FrameValue({self.nrow}x{self.ncol})"


class ListValue(Value):
    """An ordered list of values with optional element names.

    Mirrors DML ``list(...)``; supports 1-based positional access and
    by-name access, both used by ``gridSearch``-style scripts.
    """

    kind = "list"
    __slots__ = ("items", "names")

    def __init__(self, items: Sequence[Value], names: Sequence[str] | None = None):
        self.items = list(items)
        if names is not None and len(names) != len(self.items):
            raise LimaValueError("list names must match item count")
        self.names = list(names) if names is not None else None

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Value]:
        return iter(self.items)

    def get(self, index: int) -> Value:
        """1-based positional access."""
        if not 1 <= index <= len(self.items):
            raise LimaValueError(
                f"list index {index} out of range 1..{len(self.items)}")
        return self.items[index - 1]

    def get_by_name(self, name: str) -> Value:
        if self.names is None or name not in self.names:
            raise LimaValueError(f"no list element named {name!r}")
        return self.items[self.names.index(name)]

    def nbytes(self) -> int:
        return 64 + sum(item.nbytes() for item in self.items)

    def __repr__(self) -> str:
        return f"ListValue(n={len(self.items)})"


def wrap(obj) -> Value:
    """Wrap a Python/NumPy object into the appropriate :class:`Value`."""
    if isinstance(obj, Value):
        return obj
    if isinstance(obj, np.ndarray):
        if obj.dtype == object or obj.dtype.kind in ("U", "S"):
            return FrameValue(obj)
        return MatrixValue(obj)
    if isinstance(obj, str):
        return StringValue(obj)
    if isinstance(obj, (bool, int, float, np.bool_, np.integer, np.floating)):
        return ScalarValue(obj)
    if isinstance(obj, (list, tuple)):
        return ListValue([wrap(x) for x in obj])
    raise LimaValueError(f"cannot wrap {type(obj).__name__} as runtime value")
