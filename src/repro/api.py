"""Public API: :class:`LimaSession` and :class:`RunResult`.

A session owns a configuration, a process-wide lineage cache shared across
``run()`` invocations (Section 4.5: the reuse cache is designed for
process-wide sharing, e.g. collaborative notebooks), and a print buffer.

Quickstart::

    import numpy as np
    from repro import LimaSession, LimaConfig

    sess = LimaSession(LimaConfig.hybrid())
    result = sess.run(
        "B = lm(X, y, 0, 0.001, 0.0000001, 0, FALSE);",
        inputs={"X": X, "y": y}, outputs=["B"])
    beta = result.get("B")              # numpy array
    log = result.lineage_log("B")       # serialized lineage
    again = sess.recompute(log)         # bit-identical re-computation
"""

from __future__ import annotations

import hashlib
import os

import numpy as np

from repro.compiler import compile_script
from repro.compiler.program import Program
from repro.config import LimaConfig
from repro.data.values import (FrameValue, ListValue, MatrixValue,
                               ScalarValue, StringValue, Value, wrap)
from repro.errors import LimaError
from repro.lineage.item import LineageItem
from repro.lineage.reconstruct import recompute as _recompute
from repro.lineage.serialize import deserialize, serialize
from repro.reuse.cache import LineageCache
from repro.reuse.stats import CacheStats
from repro.runtime.context import ExecutionContext
from repro.runtime.interpreter import Interpreter


def input_leaf_item(name: str, value: Value) -> LineageItem:
    """Content-fingerprinted ``input`` leaf lineage item for a binding.

    The same array content under the same name always yields the same
    item — the property that enables reuse across invocations *and*
    across concurrent service sessions.  :class:`LimaSession` memoizes
    matrix fingerprints per array object on top of this; the service
    keeps its own memo.
    """
    if isinstance(value, MatrixValue):
        digest = hashlib.sha1(
            np.ascontiguousarray(value.data).tobytes()).hexdigest()[:16]
        return LineageItem("input", (), f"{name}:{digest}")
    if isinstance(value, FrameValue):
        payload = "\x1f".join(str(cell) for cell in value.data.ravel())
        digest = hashlib.sha1(payload.encode()).hexdigest()[:16]
        return LineageItem("input", (), f"{name}:{digest}")
    if isinstance(value, ScalarValue):
        return LineageItem("input", (), f"{name}:{value.value!r}")
    if isinstance(value, StringValue):
        digest = hashlib.sha1(value.value.encode()).hexdigest()[:16]
        return LineageItem("input", (), f"{name}:{digest}")
    raise LimaError(f"unsupported input kind {value.kind}")


class RunResult:
    """Outputs, lineage, and printed text of one ``LimaSession.run``."""

    def __init__(self, ctx: ExecutionContext, stdout_start: int):
        self._ctx = ctx
        self._stdout_start = stdout_start
        self._stdout_end = len(ctx.output)

    def value(self, name: str) -> Value:
        """The raw runtime value of a variable."""
        return self._ctx.symbols.get(name)

    def get(self, name: str):
        """The value of a variable as a NumPy array / Python scalar."""
        value = self._ctx.symbols.get(name)
        if isinstance(value, (MatrixValue, FrameValue)):
            return value.data
        if isinstance(value, (ScalarValue, StringValue)):
            return value.value
        if isinstance(value, ListValue):
            return [v.data if isinstance(v, MatrixValue) else v.value
                    for v in value.items]
        raise LimaError(f"cannot export value of kind {value.kind}")

    def lineage(self, name: str) -> LineageItem:
        """The lineage DAG root of a variable."""
        return self._ctx.lineage.get(name)

    def lineage_log(self, name: str) -> str:
        """The serialized lineage log of a variable (Section 3.1)."""
        return serialize(self._ctx.lineage.get(name))

    @property
    def stdout(self) -> list[str]:
        """Lines printed by the script during this run."""
        return self._ctx.output[self._stdout_start:self._stdout_end]

    def variables(self) -> list[str]:
        return self._ctx.symbols.names()


class LimaSession:
    """A LIMA execution session: compile once, run many, reuse across runs."""

    def __init__(self, config: LimaConfig | None = None, seed: int = 42):
        self.config = config or LimaConfig.base()
        # the LIMA_VERIFY_REUSE environment variable arms the reuse
        # oracle session-wide (mirrors LIMA_INJECT_FAULT), e.g. for CI
        # runs that verify every hit of an existing test suite
        env_rate = os.environ.get("LIMA_VERIFY_REUSE")
        if env_rate and self.config.reuse_enabled \
                and self.config.verify_reuse == 0.0:
            self.config = self.config.with_(verify_reuse=float(env_rate))
        self.config.validate()
        self.seed = seed
        # one session-wide memory manager: the lineage cache and the
        # live-variable buffer pool share a single budget, spill backend,
        # and eviction engine (unified replacement for the paper's static
        # Section 4.5 partitioning)
        # one resilience manager (fault injector + recovery policies +
        # stats) spans the whole session; the memory manager, the cache,
        # and every interpreter share it
        from repro.resilience.recovery import ResilienceManager
        self.resilience = ResilienceManager(self.config)
        if self.config.reuse_enabled or self.config.buffer_pool_enabled:
            from repro.memory.manager import MemoryManager
            self.memory = MemoryManager(self.config,
                                        resilience=self.resilience)
        else:
            self.memory = None
        self.cache = (LineageCache(self.config, memory=self.memory)
                      if self.config.reuse_enabled else None)
        # one reuse-correctness oracle spans the session, so its
        # verified-once memo covers cross-run hits too
        if self.config.verify_reuse > 0 and self.cache is not None:
            from repro.reuse.verify import ReuseVerifier
            self.verifier = ReuseVerifier(self.config, self.resilience,
                                          seed=seed)
        else:
            self.verifier = None
        if self.config.buffer_pool_enabled:
            from repro.runtime.bufferpool import BufferPool
            self.buffer_pool = BufferPool(memory=self.memory)
        else:
            self.buffer_pool = None
        self.output: list[str] = []
        self._programs: dict[str, Program] = {}
        self._run_counter = 0
        self._input_items: dict[int, tuple[tuple, LineageItem]] = {}
        self._profiler = None

    def attach_profiler(self, profiler) -> None:
        """Profile opcode timings and cache hit rates for later runs.

        Pass an :class:`~repro.runtime.profiler.OpProfiler`; counters from
        every subsequent :meth:`run` accumulate into it (``None``
        detaches).
        """
        self._profiler = profiler
        if self.cache is not None:
            self.cache.stats.attach_profiler(profiler)
        if profiler is not None and self.memory is not None:
            profiler.memory_stats = self.memory.stats
        if profiler is not None:
            profiler.resilience_stats = self.resilience.stats

    # ------------------------------------------------------------------

    def compile(self, script: str) -> Program:
        """Compile (and memoize) a script under this session's config."""
        program = self._programs.get(script)
        if program is None:
            program = compile_script(script, self.config)
            self._programs[script] = program
        return program

    def run(self, script: str, inputs: dict | None = None,
            seed: int | None = None, budget=None) -> RunResult:
        """Execute a script; ``inputs`` binds arrays/scalars by name.

        Input matrices get content-fingerprinted leaf lineage, so the same
        array yields the same lineage across runs — which is what enables
        cross-invocation reuse through the shared cache.

        ``budget`` optionally arms a
        :class:`~repro.service.budget.RequestBudget`: the run is then
        checked cooperatively at every instruction boundary and raises
        :class:`~repro.errors.DeadlineExceeded` /
        :class:`~repro.errors.SessionCancelled` when it trips.
        """
        program = self.compile(script)
        self._run_counter += 1
        base_seed = (seed if seed is not None
                     else self.seed * 1_000_003 + self._run_counter)
        interpreter = Interpreter(program, self.config, cache=self.cache,
                                  output=self.output, base_seed=base_seed,
                                  pool=self.buffer_pool, memory=self.memory,
                                  resilience=self.resilience,
                                  verifier=self.verifier, budget=budget)
        if self._profiler is not None:
            interpreter.attach_profiler(self._profiler)
        bindings = {}
        for name, obj in (inputs or {}).items():
            value = wrap(obj)
            item = self._input_item(name, value)
            bindings[name] = (value, item)
            # inputs double as the base of the recovery log: lineage
            # recomputation re-binds its input leaves from here
            self.resilience.register_input(name, value, token=item.data)
        stdout_start = len(self.output)
        if budget is None:
            ctx = interpreter.run(bindings)
        else:
            from repro.service.budget import activate_budget
            budget.start()
            previous = activate_budget(budget)
            try:
                ctx = interpreter.run(bindings)
            finally:
                activate_budget(previous)
        return RunResult(ctx, stdout_start)

    def _input_item(self, name: str, value: Value) -> LineageItem:
        """Content-fingerprinted leaf lineage item for a session input."""
        if isinstance(value, MatrixValue):
            # cache fingerprints per array object; hold a reference so ids
            # cannot be recycled by the garbage collector
            key = id(value.data)
            cached = self._input_items.get(key)
            if cached is not None and cached[0] is value.data:
                existing = cached[1]
                if existing.data.split(":", 1)[0] == name:
                    return existing
            item = input_leaf_item(name, value)
            self._input_items[key] = (value.data, item)
            return item
        return input_leaf_item(name, value)

    # ------------------------------------------------------------------

    def recompute(self, lineage: str | LineageItem,
                  inputs: dict | None = None):
        """Re-compute an intermediate from its lineage (Section 3.1).

        ``lineage`` is a lineage log string or a root item; ``inputs``
        re-binds session inputs referenced by the lineage.
        """
        root = (deserialize(lineage) if isinstance(lineage, str)
                else lineage)
        value = _recompute(root, inputs or {})
        if isinstance(value, MatrixValue):
            return value.data
        if isinstance(value, (ScalarValue, StringValue)):
            return value.value
        return value

    @property
    def stats(self) -> CacheStats:
        """Lineage cache statistics (zeros when reuse is disabled)."""
        if self.cache is None:
            return CacheStats()
        return self.cache.stats

    @property
    def memory_stats(self):
        """Unified memory-manager statistics (zeros with no manager)."""
        if self.memory is None:
            from repro.reuse.stats import MemoryStats
            return MemoryStats()
        return self.memory.stats

    def clear_cache(self) -> None:
        if self.cache is not None:
            self.cache.clear()
