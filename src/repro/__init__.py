"""repro — a NumPy-based reproduction of LIMA (SIGMOD 2021).

LIMA: Fine-grained Lineage Tracing and Reuse in Machine Learning Systems
(Arnab Phani, Benjamin Rath, Matthias Boehm).

The package provides a SystemDS-like ML system substrate (a DML-style
scripting language, compiler, and instruction-based runtime) plus the LIMA
framework on top: fine-grained lineage tracing with deduplication, and a
lineage-based reuse cache with multi-level full reuse, partial reuse via
compensation-plan rewrites, and cost-based eviction.

Public entry points:

* :class:`LimaSession` / :class:`RunResult` — execute scripts, get values
  and lineage, recompute from lineage,
* :class:`LimaConfig` — configuration presets matching the paper's
  experiment configurations (Base, LT, LTP, LTD, LIMA-FR, LIMA-MLR, ...).
"""

from repro.api import LimaSession, RunResult
from repro.config import LimaConfig
from repro.errors import (LimaCompileError, LimaError, LimaRuntimeError,
                          LimaSyntaxError, LimaValueError, LineageError,
                          ReuseError)

__version__ = "1.0.0"

__all__ = [
    "LimaSession",
    "RunResult",
    "LimaConfig",
    "LimaError",
    "LimaSyntaxError",
    "LimaCompileError",
    "LimaRuntimeError",
    "LimaValueError",
    "LineageError",
    "ReuseError",
    "__version__",
]
